/**
 * @file
 * The analyst's session: one trace, one spatial cut, one time slice,
 * one visual mapping, one evolving layout. Every interactive operation
 * the paper's GUI exposes -- choosing time slices, aggregating and
 * disaggregating groups, moving nodes, turning the charge / spring /
 * damping and per-type size sliders -- is a method here, so analyses
 * can be scripted, tested and benchmarked headlessly.
 *
 * The layout is kept warm across operations: when the cut changes, new
 * aggregated nodes appear at the centroid of what they absorb and
 * disaggregated children fan out around their parent's old position,
 * then the force-directed algorithm smoothly relaxes -- the paper's
 * "smooth evolution of nodes position".
 */

#pragma once

#include <cstdint>
#include <string>

#include "agg/aggregate.hh"
#include "agg/hierarchy_cut.hh"
#include "agg/timeslice.hh"
#include "layout/force.hh"
#include "layout/graph.hh"
#include "support/error.hh"
#include "support/obs.hh"
#include "support/retry.hh"
#include "trace/io.hh"
#include "trace/trace.hh"
#include "viz/mapping.hh"
#include "viz/scaling.hh"
#include "viz/scene.hh"

namespace viva::app
{

/** The interactive analysis façade. */
class Session
{
  public:
    /**
     * Take ownership of a trace and start a session over it: the cut is
     * fully disaggregated, the slice covers the whole observation
     * period, mapping and scaling are the defaults.
     */
    explicit Session(trace::Trace trace);

    /**
     * Replace the trace under analysis with one loaded from a file --
     * the native format, or Paje when the path ends in ".paje".
     *
     * Stage-then-swap: every fallible step (I/O, parsing, budget
     * checks) runs on local staging state before any member is
     * touched, so a failed load leaves the session -- trace, cut,
     * slice, layout, sliders -- bitwise unchanged (stateDigest()
     * proves it). On success the session restarts over the new trace
     * exactly as the constructor would.
     */
    support::Expected<void> load(const std::string &path,
                                 const trace::ParseBudget &budget = {});

    /**
     * FNV-1a digest over the observable session state: trace shape,
     * cut, slice, force sliders and every live layout node's position
     * and velocity. Tests compare digests before and after a failed
     * operation to prove nothing mutated.
     */
    std::uint64_t stateDigest() const;

    /** The trace under analysis. */
    const trace::Trace &trace() const { return tr; }

    /** The whole observation period. */
    support::Interval span() const { return tr.span(); }

    // --- the temporal scale -----------------------------------------------

    /** Set the time slice. */
    void setTimeSlice(const agg::TimeSlice &slice);

    /** Set the slice to the i-th of n equal parts of the span. */
    void setSliceOf(agg::SliceIndex i, std::size_t n);

    /** The current time slice. */
    const agg::TimeSlice &timeSlice() const { return slice; }

    // --- the spatial scale -------------------------------------------------

    /**
     * Collapse the container at this path (or unique simple name) into
     * one aggregated node.
     * @retval false when no such container exists
     */
    bool aggregate(const std::string &path);

    /** Expand an aggregated node one level. @retval false if unknown */
    bool disaggregate(const std::string &path);

    /** Collapse every internal container at this depth (Fig. 8 levels). */
    void aggregateToDepth(std::uint16_t depth);

    /**
     * Focus on one container: full detail inside it, one aggregated
     * node per other sibling subtree (the outlier-hunting gesture).
     * @retval false when no such container exists
     */
    bool focus(const std::string &path);

    /** Fully disaggregate. */
    void resetAggregation();

    /** The current cut (read-only; mutate through the methods above). */
    const agg::HierarchyCut &cut() const { return hierCut; }

    // --- appearance -----------------------------------------------------

    /** The visual mapping rules (mutable: remapping mid-analysis). */
    viz::VisualMapping &mapping() { return visMapping; }

    /** The per-type scaling and its sliders. */
    viz::TypeScaling &scaling() { return typeScaling; }
    const viz::TypeScaling &scaling() const { return typeScaling; }

    /** The force parameters (the charge/spring/damping sliders). */
    layout::ForceParams &forceParams() { return force.params(); }

    // --- threading -------------------------------------------------------

    /**
     * Worker threads used by the layout force accumulation and by view
     * aggregation (the `set threads` command). Defaults to
     * hardware_concurrency. Purely a speed knob: layouts and aggregated
     * values are bitwise identical for every setting.
     * @param n clamped to at least 1
     */
    void setThreads(std::size_t n);

    /** The current worker-thread count. */
    std::size_t threads() const { return nThreads; }

    // --- the layout -------------------------------------------------------

    /**
     * Run the force-directed algorithm until it settles (or the
     * iteration budget runs out). When an operation deadline is set
     * (setOperationDeadline), the iterations run on a staged copy of
     * the graph under the governor: a deadline abort returns
     * Errc::Deadline and leaves every position and velocity bitwise
     * unchanged; on success the staged graph is swapped in. Without a
     * deadline this cannot fail.
     * @return iterations performed
     */
    support::Expected<std::size_t>
    stabilizeLayout(std::size_t max_iters = 300);

    /**
     * Advance exactly n iterations (same all-or-nothing deadline
     * semantics as stabilizeLayout).
     */
    support::Expected<void> stepLayout(std::size_t n = 1);

    /**
     * Drag the named node to a position; its neighbours follow through
     * the springs while it is held, then it is released.
     * @retval false when the container is not a visible node
     */
    bool moveNode(const std::string &path, double x, double y);

    /** Pin a visible node in place (true) or release it (false). */
    bool pinNode(const std::string &path, bool pinned);

    /** The layout graph (read access for metrics and tests). */
    const layout::LayoutGraph &layoutGraph() const { return graph; }

    /**
     * Mutable layout graph, for advanced uses (custom placements,
     * benchmarks). Node/edge membership is owned by the session --
     * only positions, pins and charges should be touched.
     */
    layout::LayoutGraph &mutableLayoutGraph() { return graph; }

    /** The layout engine. */
    const layout::ForceLayout &layoutEngine() const { return force; }

    // --- output -----------------------------------------------------------

    /** The aggregated view for the current cut and slice. */
    agg::View view(bool with_stats = false) const;

    /**
     * Compose the current scene.
     * @param options canvas / labelling / pie options
     * @param with_stats build the view with statistical indicators so
     *        heterogeneous aggregates get flagged in the rendering
     */
    viz::Scene scene(const viz::SceneOptions &options = {},
                     bool with_stats = false);

    /** Render the current scene to an SVG file. */
    support::Expected<void> renderSvg(const std::string &path,
                                      const std::string &title = "");

    /** Render the current scene as ASCII art. */
    std::string renderAscii();

    /**
     * Render a treemap of the hierarchy weighted by a metric over the
     * current time slice (the sibling multiscale view). An unknown
     * metric yields Errc::NotFound.
     */
    support::Expected<void> renderTreemap(const std::string &path,
                                          const std::string &metric_name,
                                          std::uint16_t max_depth = 0);

    /**
     * Render the Gantt chart of the trace's state records over the
     * current time slice (the classical timeline baseline).
     * @return number of rows drawn
     */
    support::Expected<std::size_t> renderGantt(const std::string &path,
                                               std::size_t max_rows = 64);

    /**
     * Write the current view (with statistics) as CSV, for external
     * plotting tools.
     */
    support::Expected<void> exportCsv(const std::string &path) const;

    /**
     * Render a line chart of a metric over the whole span for the
     * given containers (paths or unique names); an empty list charts
     * the whole platform as one series. An unknown metric or
     * container yields Errc::NotFound.
     */
    support::Expected<void> renderChart(
        const std::string &path, const std::string &metric_name,
        const std::vector<std::string> &containers = {});

    /**
     * Run both anomaly detectors for a metric: the spatial one on the
     * current cut and slice, the temporal one on the current cut over
     * the whole span. Human-readable findings, strongest first.
     * @retval empty-and-one-error-line vector when the metric is bad
     */
    std::vector<std::string> findAnomalies(
        const std::string &metric_name, double threshold = 3.0) const;

    /**
     * Save the trace under analysis to a file, in the native format or
     * (path ending in ".paje") the Paje format.
     */
    support::Expected<void> saveTrace(const std::string &path) const;

    /**
     * Animate through time (Fig. 9): split the span into `frames` equal
     * slices and render each to `<dir>/<prefix>NNN.svg`, relaxing the
     * layout between frames. The slice is left at the last frame.
     * @return number of frames written
     */
    support::Expected<std::size_t> animate(
        std::size_t frames, const std::string &dir,
        const std::string &prefix = "frame",
        std::size_t iters_per_frame = 60);

    // --- durability -------------------------------------------------------

    /**
     * Write a crash-safe checkpoint of the whole session (trace, cut,
     * slice, sliders, budgets, every layout node's position and
     * velocity) to `path` in the `viva-ckpt-1` format. The bytes go to
     * a temp file and are atomically renamed into place, so a crash at
     * any byte leaves the previous checkpoint or the new one, never a
     * torn file. Transient I/O failures are retried under
     * retryPolicy().
     */
    support::Expected<void> checkpoint(const std::string &path) const;

    /**
     * Restore the session from a checkpoint file. Stage-then-swap like
     * load(): the file is read, checksummed, parsed and fully
     * validated (embedded trace, cut flags, node set, finiteness) on
     * staging state before any member is touched, so a failed restore
     * leaves the session bitwise unchanged. A successful restore is
     * bitwise-equivalent to the checkpointed session: stateDigest()
     * before checkpoint() equals stateDigest() after restore().
     */
    support::Expected<void>
    restore(const std::string &path,
            const trace::ParseBudget &budget = {});

    /** The retry policy governing transient-I/O retries (mutable). */
    support::RetryPolicy &retryPolicy() { return ioRetry; }

    // --- resource governance ----------------------------------------------

    /**
     * Set the memory budget in bytes (0 disables). The budget compares
     * against workingSetBytes(); when the working set is above it, the
     * session degrades gracefully: the hierarchy cut is coarsened one
     * level at a time (Eq. 1 aggregation as load shedding) until the
     * model fits or only the root level is left. Degradation runs here
     * and after every operation that grows the working set.
     */
    void setMemoryBudget(std::uint64_t bytes);

    /** The current memory budget (0 = disabled). */
    std::uint64_t memoryBudget() const { return memBudgetBytes; }

    /**
     * Set the per-operation deadline in nanoseconds (0 disables).
     * While set, stabilizeLayout / stepLayout / renderSvg / animate
     * run under the process-wide governor: work past the deadline is
     * cooperatively cancelled and the operation returns Errc::Deadline
     * with the session state bitwise unchanged.
     */
    void setOperationDeadline(std::uint64_t nanos);

    /** The current per-operation deadline (0 = disabled). */
    std::uint64_t operationDeadline() const { return opDeadlineNanos; }

    /**
     * Deterministic working-set model in bytes: per-record accounting
     * over the trace, the layout graph and the aggregated view of the
     * current cut -- NOT an OS probe, so budgets behave identically
     * across allocators and platforms.
     */
    std::uint64_t workingSetBytes() const;

    /** Cut coarsenings forced by the memory budget so far. */
    std::uint64_t degradationCount() const { return degradations; }

    /** Operations aborted by the deadline governor so far. */
    std::uint64_t deadlineAbortCount() const { return deadlineAborts; }

    // --- observability ----------------------------------------------------

    /**
     * A deterministic snapshot of the process-wide metrics registry:
     * every counter, gauge and phase histogram the hot paths have
     * recorded so far, sorted by name. The `stats` command renders
     * exactly this. Note the registry is process-wide, so the snapshot
     * spans every session in the process (there is normally one).
     */
    support::obs::StatsSnapshot
    observability() const
    {
        return support::obs::Registry::global().snapshot();
    }

    // --- auditing ---------------------------------------------------------

    /**
     * Run every module's deep invariant audit over the session's state:
     * the trace, the cut, the layout graph (finite positions included)
     * and the aggregated view of the current cut and slice, with its
     * Equation-1 conservation check. In a -DVIVA_VALIDATE=ON build this
     * runs automatically after every mutating command and panics on the
     * first violation; call it directly for an on-demand check.
     * @return the violated invariants; empty when well-formed
     */
    support::AuditLog auditInvariants() const;

  private:
    /**
     * Reconcile the layout graph with the current cut: carry positions
     * of surviving nodes, place aggregates at absorbed centroids,
     * fan disaggregated children around their parent, rebuild edges.
     */
    void syncLayout();

    /** In a validate build, audit everything and panic on violations. */
    void maybeAudit(const char *what) const;

    /** Layout node of a container path; kNoNode when not visible. */
    layout::NodeId nodeOf(const std::string &path) const;

    /**
     * Degrade until the working set fits the memory budget (or the
     * ladder is exhausted at the root level). No-op without a budget.
     */
    void enforceBudget();

    /** Deepest depth among the currently visible containers. */
    std::uint16_t deepestVisibleDepth() const;

    trace::Trace tr;
    agg::HierarchyCut hierCut;
    agg::TimeSlice slice;
    viz::VisualMapping visMapping;
    viz::TypeScaling typeScaling;
    layout::LayoutGraph graph;
    layout::ForceLayout force;
    std::size_t nThreads;
    support::RetryPolicy ioRetry;
    std::uint64_t memBudgetBytes = 0;
    std::uint64_t opDeadlineNanos = 0;
    std::uint64_t degradations = 0;
    std::uint64_t deadlineAborts = 0;
};

} // namespace viva::app

