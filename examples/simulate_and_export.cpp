/**
 * @file
 * The postmortem workflow: simulation and analysis as separate steps,
 * connected by a trace file -- the way the paper's tool consumes traces
 * produced earlier by SMPI/SimGrid.
 *
 *  1. simulate the NAS-DT benchmark and *write* the resulting trace to
 *     disk in the viva text format;
 *  2. reload it in a fresh process-like context and verify it is
 *     bit-identical;
 *  3. run a short scripted analysis session against the loaded trace.
 *
 *   ./simulate_and_export [output-dir]     (default: viva_out)
 */

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "support/error.hh"
#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "trace/io.hh"
#include "workload/nasdt.hh"

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : "viva_out";
    std::filesystem::create_directories(out_dir);
    std::string trace_path = out_dir + "/nasdt.viva";

    // --- step 1: simulate and export -------------------------------------
    std::printf("simulating NAS-DT WH and exporting the trace...\n");
    viva::platform::Platform platform =
        viva::platform::makeTwoClusterPlatform();
    viva::sim::SimulationRun run(platform);
    viva::workload::DtParams params;
    params.cycles = 10;
    params.recordStates = true;
    viva::workload::runNasDtWhiteHole(
        run, params,
        viva::workload::sequentialDeployment(platform, params));

    viva::support::okOrDie(
        viva::trace::writeTraceFile(run.trace, trace_path),
        "simulate_and_export");
    std::printf("  wrote %s (%zu containers, %zu change points, "
                "%zu states)\n",
                trace_path.c_str(), run.trace.containerCount(),
                run.trace.pointCount(), run.trace.states().size());

    // --- step 2: reload and verify -----------------------------------------
    viva::trace::Trace loaded = viva::support::valueOrDie(
        viva::trace::readTraceFile(trace_path), "simulate_and_export");
    std::ostringstream original, reread;
    viva::trace::writeTrace(run.trace, original);
    viva::trace::writeTrace(loaded, reread);
    std::printf("  reloaded: %s\n", original.str() == reread.str()
                                        ? "bit-identical round trip"
                                        : "MISMATCH");

    // --- step 3: a scripted postmortem analysis ------------------------------
    viva::app::Session session(std::move(loaded));
    viva::app::CommandInterpreter cli(session);
    std::istringstream script(
        "info\n"
        "depth 3\n"
        "stabilize 400\n"
        "nodes\n"
        "render " + out_dir + "/postmortem.svg postmortem analysis\n"
        "gantt " + out_dir + "/postmortem_gantt.svg\n");
    std::ostringstream log;
    std::size_t done = cli.executeScript(script, log);
    std::printf("%s", log.str().c_str());
    std::printf("%zu analysis command(s) executed; outputs in %s/\n",
                done, out_dir.c_str());
    return 0;
}
