/**
 * @file
 * The scripted-interactivity stand-in for the paper's GUI: load a trace
 * (or the built-in demo platform), then execute analysis commands from
 * a script file or standard input.
 *
 *   ./interactive_session                      demo trace, read stdin
 *   ./interactive_session trace.viva           load a trace file
 *   ./interactive_session trace.paje           load a Paje trace
 *   ./interactive_session trace.viva script    replay a command script
 *   ./interactive_session --demo script        demo trace + script
 *
 * Try:  echo -e "info\ndepth 3\nstabilize\nascii\nnodes" | \
 *           ./interactive_session --demo
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "support/error.hh"
#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "support/strings.hh"
#include "trace/io.hh"
#include "trace/paje.hh"

namespace
{

/** The demo trace: the mirrored two-cluster platform (no simulation). */
viva::trace::Trace
demoTrace()
{
    viva::platform::Platform p =
        viva::platform::makeTwoClusterPlatform();
    viva::trace::Trace t;
    viva::platform::mirrorPlatform(p, t);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string source = argc > 1 ? argv[1] : "--demo";
    viva::trace::Trace trace =
        source == "--demo"
            ? demoTrace()
            : (viva::support::endsWith(source, ".paje")
                   ? viva::support::valueOrDie(
                         viva::trace::readPajeTraceFile(source),
                         "interactive_session")
                         .trace
                   : viva::support::valueOrDie(
                         viva::trace::readTraceFile(source),
                         "interactive_session"));

    viva::app::Session session(std::move(trace));
    viva::app::CommandInterpreter cli(session);

    std::printf("viva interactive session -- %zu containers, span "
                "[%g, %g); type 'help' for commands\n",
                session.trace().containerCount(), session.span().begin,
                session.span().end);

    if (argc > 2) {
        std::ifstream script(argv[2]);
        if (!script) {
            std::fprintf(stderr, "cannot open script '%s'\n", argv[2]);
            return 1;
        }
        std::size_t done = cli.executeScript(script, std::cout);
        std::printf("%zu command(s) executed\n", done);
        return 0;
    }

    std::string line;
    while (std::getline(std::cin, line)) {
        cli.execute(line, std::cout);
        std::cout.flush();
    }
    return 0;
}
