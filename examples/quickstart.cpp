/**
 * @file
 * Quickstart: the Figure 1-2 walkthrough of the paper, end to end.
 *
 * Builds the toy trace (two hosts, one link, availability and
 * utilization varying over [0, 12)), opens an analysis session, places
 * the three cursors A/B/C of Fig. 1 as time slices, and renders the
 * three topology-based views plus an ASCII look.
 *
 *   ./quickstart [output-dir]         (default: viva_out)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "support/error.hh"
#include "app/session.hh"
#include "trace/builder.hh"

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : "viva_out";
    std::filesystem::create_directories(out_dir);

    // 1. A trace: normally read from a file or produced by the
    //    simulator; here the canonical Fig. 1 fixture.
    viva::trace::Trace trace = viva::trace::makeFigure1Trace();

    // 2. A session owns the trace and everything interactive.
    viva::app::Session session(std::move(trace));
    std::printf("observation period: [%g, %g)\n", session.span().begin,
                session.span().end);

    // 3. Lay out the topology (force-directed; converges in a blink on
    //    three nodes).
    session.stabilizeLayout(400).value();

    // 4. The three cursors of Fig. 1, as narrow time slices.
    struct Cursor { const char *name; double at; } cursors[] = {
        {"A", 1.0}, {"B", 6.0}, {"C", 10.0}};
    auto power = session.trace().findMetric("power");

    for (const auto &cursor : cursors) {
        session.setTimeSlice({cursor.at, cursor.at + 0.1});
        viva::agg::View view = session.view();

        std::printf("cursor %s (t=%g):", cursor.name, cursor.at);
        for (const auto &node : view.nodes) {
            double v = view.valueOf(node.id, power);
            if (v > 0)
                std::printf("  %s=%g MFlops",
                            session.trace().fullName(node.id).c_str(), v);
        }
        std::printf("\n");

        std::string path = out_dir + "/fig1_cursor_" +
                           std::string(cursor.name) + ".svg";
        viva::support::okOrDie(
            session.renderSvg(path, "Figure 1, cursor " +
                                        std::string(cursor.name)),
            "quickstart cursor render");
        std::printf("  rendered %s\n", path.c_str());
    }

    // 5. The Fig. 2 time slice: aggregate over [A1, A2) = [2, 10).
    session.setTimeSlice({2.0, 10.0});
    auto host_a = session.trace().findByPath("HostA");
    viva::agg::View view = session.view();
    std::printf("Fig. 2 time-slice [2, 10): HostA power=%g, used=%g\n",
                view.valueOf(host_a, power),
                view.valueOf(host_a,
                             session.trace().findMetric("power_used")));
    viva::support::okOrDie(
        session.renderSvg(out_dir + "/fig2_timeslice.svg",
                          "Figure 2: temporal aggregation"),
        "quickstart fig2 render");

    // 6. A terminal look at the same scene.
    std::printf("%s", session.renderAscii().c_str());
    std::printf("done; SVGs in %s/\n", out_dir.c_str());
    return 0;
}
