/**
 * @file
 * Case study 2 (Section 5.2): two non-cooperative master-worker
 * applications competing on the Grid'5000 model (2170 hosts).
 *
 * Application 1 is CPU-bound; application 2 has a higher communication
 * to computation ratio. Both use the bandwidth-centric strategy with a
 * 3-task prefetch buffer. The example reproduces the analyst workflow
 * of Figs. 8-9: the four spatial aggregation levels (host / cluster /
 * site / grid) and an animation through time at the site level.
 *
 *   ./gridmw_analysis [output-dir] [tasks-per-app]
 *       defaults: viva_out 6000 (enough work that the bandwidth-centric
 *       diffusion reaches most of the grid, as in Fig. 9)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "support/error.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "workload/masterworker.hh"

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : "viva_out";
    std::size_t tasks = argc > 2 ? std::stoul(argv[2]) : 6000;
    std::filesystem::create_directories(out_dir);

    std::printf("building the Grid'5000 model...\n");
    viva::platform::Platform grid = viva::platform::makeGrid5000();
    std::printf("  %zu hosts, %zu links, %zu groups\n", grid.hostCount(),
                grid.linkCount(), grid.groupCount());

    viva::sim::SimulationRun run(grid, {"cpubound", "netbound"});

    // The two applications originate from different sites.
    viva::workload::MwParams app1;
    app1.name = "cpubound";
    app1.master = grid.findHost("adonis-1");       // grenoble
    app1.taskInputMbits = 4.0;
    app1.taskMflop = 60000.0;
    app1.totalTasks = tasks;

    viva::workload::MwParams app2;
    app2.name = "netbound";
    app2.master = grid.findHost("sagittaire-1");   // lyon
    app2.taskInputMbits = 60.0;                    // higher comm/comp
    app2.taskMflop = 6000.0;
    app2.totalTasks = tasks;

    app1.workers = app2.workers = viva::workload::allHostsExcept(
        grid, {app1.master, app2.master});

    viva::workload::MasterWorkerApp a1(run, app1, 1);
    viva::workload::MasterWorkerApp a2(run, app2, 2);

    std::printf("simulating %zu + %zu tasks...\n", tasks, tasks);
    a1.start();
    a2.start();
    run.engine.run();
    std::printf("  done at t=%.1f s (%zu fair-share solves)\n",
                run.engine.now(), run.engine.fairShareRuns());
    std::printf("  app1 finished: %s, app2 finished: %s\n",
                a1.finished() ? "yes" : "no",
                a2.finished() ? "yes" : "no");

    // --- the Fig. 8 multi-scale walk -----------------------------------
    viva::app::Session session(std::move(run.trace));

    struct Level { const char *name; int depth; } levels[] = {
        {"grid", 1}, {"site", 2}, {"cluster", 3}, {"host", -1}};
    for (const auto &level : levels) {
        if (level.depth < 0)
            session.resetAggregation();
        else
            session.aggregateToDepth(std::uint16_t(level.depth));
        std::printf("  %s level: %zu visible nodes, %zu edges\n",
                    level.name, session.cut().visibleCount(),
                    session.layoutGraph().edgeCount());
        // The host-level layout of 2170+ nodes relaxes with Barnes-Hut.
        session.stabilizeLayout(level.depth < 0 ? 120 : 300).value();
        viva::support::okOrDie(
            session.renderSvg(out_dir + "/fig8_" + level.name +
                                  ".svg",
                              std::string("Fig. 8: ") + level.name +
                                  " level"),
            "fig8 render");
    }

    // --- per-site resource shares of the two applications --------------
    session.aggregateToDepth(2);
    auto m1 = session.trace().findMetric("power_used:cpubound");
    auto m2 = session.trace().findMetric("power_used:netbound");
    viva::agg::Aggregator agg(session.trace());
    viva::agg::TimeSlice whole = session.span();
    std::printf("per-site compute usage (MFlop/s averaged over run):\n");
    std::printf("  %-12s %12s %12s\n", "site", "cpubound", "netbound");
    for (auto id : session.cut().visibleNodes()) {
        if (session.trace().container(id).kind !=
            viva::trace::ContainerKind::Site)
            continue;
        std::printf("  %-12s %12.0f %12.0f\n",
                    session.trace().container(id).name.c_str(),
                    agg.value(id, m1, whole),
                    agg.value(id, m2, whole));
    }

    // --- composition pies: each site's per-application share -------------
    // (the paper's pie-chart extension: both projects on one glyph)
    viva::viz::CompositionRule comp;
    comp.parts = {m1, m2};
    comp.total = session.trace().findMetric("power");
    session.mapping().setComposition(comp);
    session.aggregateToDepth(2);
    session.stabilizeLayout(200).value();
    viva::support::okOrDie(
        session.renderSvg(out_dir + "/fig8_sites_perapp.svg",
                          "per-application shares (pie glyphs)"),
        "per-app render");
    session.mapping().clearComposition();

    // --- treemap of compute power across the grid ------------------------
    viva::support::okOrDie(
        session.renderTreemap(out_dir + "/grid_treemap_power.svg",
                              "power", 3),
        "treemap render");

    // --- the Fig. 9 animation at site level ------------------------------
    std::printf("rendering the Fig. 9 animation (site level)...\n");
    session.aggregateToDepth(2);
    std::size_t frames = viva::support::valueOrDie(
        session.animate(4, out_dir, "fig9_t", 150), "fig9 animate");
    std::printf("  %zu frames\n", frames);

    std::printf("done; SVGs in %s/\n", out_dir.c_str());
    return 0;
}
