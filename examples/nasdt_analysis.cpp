/**
 * @file
 * Case study 1 (Section 5.1): the NAS-DT class A White Hole benchmark
 * on two interconnected 11-host clusters.
 *
 * Runs the benchmark with the ordinary sequential host file and with
 * the locality-aware host file, regenerates the eight topology-based
 * views of Figs. 6-7 (whole run + beginning/middle/end slices for each
 * deployment), and reports the deployment improvement the analysis
 * leads to.
 *
 *   ./nasdt_analysis [output-dir]     (default: viva_out)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "support/error.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "workload/nasdt.hh"

namespace
{

struct RunOutcome
{
    viva::trace::Trace trace;
    double makespan;
};

RunOutcome
simulate(bool locality)
{
    viva::platform::Platform platform =
        viva::platform::makeTwoClusterPlatform();
    viva::sim::SimulationRun run(platform);

    viva::workload::DtParams params;  // class A WH: 21 processes
    params.cycles = 20;
    params.recordStates = true;       // feeds the Gantt baseline view

    viva::workload::Deployment deployment =
        locality ? viva::workload::localityDeployment(platform, params)
                 : viva::workload::sequentialDeployment(platform, params);

    viva::workload::DtResult result =
        viva::workload::runNasDtWhiteHole(run, params, deployment);
    return {std::move(run.trace), result.makespanS};
}

/** The analyst's four views of Fig. 6 / Fig. 7 for one run. */
void
renderViews(viva::app::Session &session, const std::string &out_dir,
            const std::string &tag)
{
    // Start from the topology at host level and settle the layout.
    session.stabilizeLayout(600).value();

    auto bw_used = session.trace().findMetric("bandwidth_used");
    auto bw = session.trace().findMetric("bandwidth");
    auto backbone = session.trace().findByName("backbone");

    // Whole-run view.
    session.setTimeSlice(session.span());
    viva::agg::View whole = session.view();
    std::printf("  [%s] whole run: backbone %.0f%% utilized\n",
                tag.c_str(),
                100.0 * whole.valueOf(backbone, bw_used) /
                    whole.valueOf(backbone, bw));
    viva::support::okOrDie(
        session.renderSvg(out_dir + "/" + tag + "_whole.svg",
                          tag + ": whole execution"),
        "nasdt_analysis");

    // Beginning / middle / end slices.
    static const char *names[3] = {"begin", "middle", "end"};
    for (std::size_t i = 0; i < 3; ++i) {
        session.setSliceOf(viva::agg::SliceIndex::fromIndex(i), 3);
        viva::agg::View v = session.view();
        std::printf("  [%s] %s slice: backbone %.0f%% utilized\n",
                    tag.c_str(), names[i],
                    100.0 * v.valueOf(backbone, bw_used) /
                        v.valueOf(backbone, bw));
        viva::support::okOrDie(
            session.renderSvg(
                out_dir + "/" + tag + "_" + names[i] + ".svg",
                tag + ": " + names[i] + " of execution"),
            "nasdt_analysis");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : "viva_out";
    std::filesystem::create_directories(out_dir);

    std::printf("NAS-DT class A White Hole, 2 clusters x 11 hosts\n");

    std::printf("running with the ordinary (sequential) host file...\n");
    RunOutcome seq = simulate(false);
    std::printf("  makespan: %.2f s\n", seq.makespan);

    viva::app::Session seq_session(std::move(seq.trace));
    renderViews(seq_session, out_dir, "fig6_sequential");

    std::printf(
        "running with the locality-aware host file (Fig. 7)...\n");
    RunOutcome loc = simulate(true);
    std::printf("  makespan: %.2f s\n", loc.makespan);

    viva::app::Session loc_session(std::move(loc.trace));
    renderViews(loc_session, out_dir, "fig7_locality");

    double gain = 100.0 * (seq.makespan - loc.makespan) / seq.makespan;
    std::printf(
        "deployment improvement: %.1f%% (the paper reports ~20%%)\n",
        gain);

    // Let the anomaly detectors point at the bottleneck before any
    // eyeballing: the backbone's utilization stands out among its
    // sibling links.
    seq_session.setTimeSlice(seq_session.span());
    std::printf("automatic anomaly scan (bandwidth_used):\n");
    for (const std::string &finding :
         seq_session.findAnomalies("bandwidth_used", 2.5))
        std::printf("  %s\n", finding.c_str());

    // The classical baseline the paper argues against: the Gantt chart
    // shows each process forwarding/consuming, but cannot show that
    // the slowdown's *cause* is the saturated inter-cluster link --
    // that is precisely what the topology-based views above add.
    std::size_t rows = viva::support::valueOrDie(
        seq_session.renderGantt(out_dir + "/fig6_gantt_baseline.svg"),
        "nasdt_analysis");
    std::printf("gantt baseline rendered (%zu process rows) -- note it "
                "cannot show the network cause\n",
                rows);

    // When does the backbone saturate? The statistical-chart companion
    // answers directly.
    viva::support::okOrDie(
        seq_session.renderChart(out_dir + "/fig6_backbone_chart.svg",
                                "bandwidth_used", {"backbone"}),
        "nasdt_analysis");

    // The sibling multiscale view: a treemap of network traffic makes
    // the backbone's share of all moved bits directly visible.
    viva::support::okOrDie(
        seq_session.renderTreemap(out_dir + "/fig6_treemap_bw.svg",
                                  "bandwidth_used"),
        "nasdt_analysis");
    std::printf("done; SVGs in %s/\n", out_dir.c_str());
    return 0;
}
