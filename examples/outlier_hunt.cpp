/**
 * @file
 * An outlier-hunting session, staging the analysis loop the paper's
 * Section 3.2.2 describes ("the analyst wants to group similar
 * entities to focus on outliers") end to end:
 *
 *  1. a synthetic grid is built with one *degraded* cluster (hosts at
 *     a fraction of their nominal power -- think thermal throttling);
 *  2. a master-worker application runs over the whole grid;
 *  3. the analyst starts at cluster scale, lets the spatial anomaly
 *     detector point at the odd cluster, *focuses* on it (full detail
 *     there, one aggregate per everything else), and renders the
 *     evidence: the focused topology view and the per-host chart.
 *
 *   ./outlier_hunt [output-dir]     (default: viva_out)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "support/error.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "workload/masterworker.hh"

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : "viva_out";
    std::filesystem::create_directories(out_dir);

    // --- a grid with a hidden problem ------------------------------------
    viva::platform::Platform grid("grid");
    std::vector<viva::platform::VertexId> site_router;
    const char *site_names[] = {"east", "west", "north"};
    for (const char *site_name : site_names) {
        auto site = grid.addSite(site_name);
        auto router = grid.addRouter(std::string(site_name) + "-router",
                                     site);
        site_router.push_back(grid.router(router).vertex);
        for (int c = 0; c < 2; ++c) {
            viva::platform::ClusterSpec spec;
            spec.name = std::string(site_name) + "-c" +
                        std::to_string(c);
            spec.hostCount = 8;
            // The degraded cluster: west-c1 runs at 1/4 power.
            spec.hostPowerMflops =
                spec.name == "west-c1" ? 2000.0 : 8000.0;
            viva::platform::buildCluster(grid, site, spec,
                                         site_router.back(), site);
        }
    }
    for (std::size_t s = 0; s < 3; ++s) {
        auto l = grid.addLink("bb" + std::to_string(s), 10000.0, 1e-3,
                              grid.grid());
        grid.connect(site_router[s], site_router[(s + 1) % 3], l);
    }

    // --- the workload ---------------------------------------------------------
    viva::sim::SimulationRun run(grid);
    viva::workload::MwParams params;
    params.master = grid.findHost("east-c0-1");
    params.workers =
        viva::workload::allHostsExcept(grid, {params.master});
    params.totalTasks = 500;
    params.taskMflop = 20000.0;
    params.taskInputMbits = 2.0;
    viva::workload::MasterWorkerApp app(run, params,
                                        viva::sim::kDefaultTag);
    app.start();
    run.engine.run();
    std::printf("simulated %zu tasks over %zu hosts (one cluster is "
                "secretly throttled)\n",
                params.totalTasks, grid.hostCount());

    // --- the hunt ---------------------------------------------------------------
    viva::app::Session session(std::move(run.trace));
    session.aggregateToDepth(3);  // cluster scale
    session.stabilizeLayout(400).value();
    viva::support::okOrDie(
        session.renderSvg(out_dir + "/hunt_1_clusters.svg",
                          "step 1: cluster scale"),
        "hunt step 1 render");

    std::printf("step 2: anomaly scan at cluster scale (power)...\n");
    std::vector<std::string> findings =
        session.findAnomalies("power", 2.0);
    for (const std::string &f : findings)
        std::printf("  %s\n", f.c_str());
    if (findings.empty())
        std::printf("  (nothing flagged -- unexpected)\n");

    std::printf("step 3: focus on the flagged cluster...\n");
    session.focus("west-c1");
    session.stabilizeLayout(400).value();
    viva::support::okOrDie(
        session.renderSvg(out_dir + "/hunt_2_focused.svg",
                          "step 3: focused on west-c1"),
        "hunt step 3 render");
    std::printf("  %zu visible nodes (full detail inside west-c1, one "
                "aggregate per other subtree)\n",
                session.cut().visibleCount());

    // The evidence: per-host utilization chart of the odd cluster vs a
    // healthy one.
    viva::support::okOrDie(
        session.renderChart(out_dir + "/hunt_3_evidence.svg",
                            "power_used", {"west-c1", "west-c0"}),
        "hunt evidence chart");
    viva::support::okOrDie(session.exportCsv(out_dir + "/hunt_view.csv"),
                           "hunt csv export");
    std::printf(
        "done; evidence in %s/hunt_*.svg and hunt_view.csv\n",
        out_dir.c_str());
    return 0;
}
