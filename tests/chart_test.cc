/**
 * @file
 * Tests for the time-series chart renderer.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "app/commands.hh"
#include "app/session.hh"
#include "trace/builder.hh"
#include "viz/chart.hh"

namespace va = viva::agg;
namespace vap = viva::app;
namespace vt = viva::trace;
namespace vv = viva::viz;

TEST(ChartSeries, SamplesEquationOneValues)
{
    vt::Trace trace = vt::makeFigure1Trace();
    auto host_a = trace.findByName("HostA");
    auto power = trace.findMetric("power");

    vv::ChartSeries s =
        vv::sampleSeries(trace, host_a, power, {0.0, 12.0}, 12);
    ASSERT_EQ(s.points.size(), 12u);
    EXPECT_EQ(s.label, "HostA");
    // Sample 0 covers [0,1): value 100; sample 5 covers [5,6): 10.
    EXPECT_DOUBLE_EQ(s.points[0].first, 0.5);
    EXPECT_DOUBLE_EQ(s.points[0].second, 100.0);
    EXPECT_DOUBLE_EQ(s.points[5].second, 10.0);
    EXPECT_DOUBLE_EQ(s.points[11].second, 100.0);
    // Time-ascending.
    for (std::size_t i = 1; i < s.points.size(); ++i)
        EXPECT_GT(s.points[i].first, s.points[i - 1].first);
}

TEST(ChartSeries, AggregatedNodeSeries)
{
    vt::Trace trace = vt::makeFigure1Trace();
    auto power = trace.findMetric("power");
    // The root series sums both hosts: 125 over [0,4).
    vv::ChartSeries s =
        vv::sampleSeries(trace, trace.root(), power, {0.0, 4.0}, 4);
    EXPECT_EQ(s.label, "whole platform");
    EXPECT_DOUBLE_EQ(s.points[0].second, 125.0);
}

TEST(ChartSvg, ContainsAxesLegendAndLines)
{
    vt::Trace trace = vt::makeFigure1Trace();
    auto power = trace.findMetric("power");
    std::vector<vv::ChartSeries> series{
        vv::sampleSeries(trace, trace.findByName("HostA"), power,
                         {0.0, 12.0}, 24),
        vv::sampleSeries(trace, trace.findByName("HostB"), power,
                         {0.0, 12.0}, 24)};

    std::ostringstream out;
    vv::ChartOptions options;
    options.title = "power history";
    options.yLabel = "MFlops";
    vv::writeChartSvg(series, out, options);
    std::string svg = out.str();
    EXPECT_NE(svg.find("<polyline"), std::string::npos);
    EXPECT_NE(svg.find("power history"), std::string::npos);
    EXPECT_NE(svg.find("MFlops"), std::string::npos);
    EXPECT_NE(svg.find("HostA"), std::string::npos);  // legend
    EXPECT_NE(svg.find("HostB"), std::string::npos);
}

TEST(ChartSvg, EmptySeriesStillValid)
{
    std::ostringstream out;
    vv::writeChartSvg({}, out);
    EXPECT_NE(out.str().find("</svg>"), std::string::npos);
}

TEST(SessionChart, RendersAndValidates)
{
    vap::Session session(vt::makeFigure1Trace());
    auto dir = std::filesystem::temp_directory_path() / "viva_chart";
    std::filesystem::create_directories(dir);
    std::string path = (dir / "c.svg").string();

    EXPECT_TRUE(session.renderChart(path, "power", {"HostA", "HostB"}));
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_TRUE(session.renderChart(path, "power"));  // whole platform
    EXPECT_FALSE(session.renderChart(path, "nope"));
    EXPECT_FALSE(session.renderChart(path, "power", {"bogus"}));
}

TEST(CommandsChart, Works)
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    auto dir = std::filesystem::temp_directory_path() / "viva_chart";
    std::filesystem::create_directories(dir);
    std::string path = (dir / "cmd.svg").string();
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("chart power " + path + " HostA", out));
    EXPECT_FALSE(cli.execute("chart nope " + path, out));
    EXPECT_TRUE(std::filesystem::exists(path));
}
