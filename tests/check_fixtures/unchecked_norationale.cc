// A waiver without a rationale is itself a finding, and does not
// silence the rule it names.
#include "expected_api.hh"

void
demo(viva::app::Session &session)
{
    session.load("trace.paje");  // viva-check: allow(unchecked-expected)
}
