// An enumerator spelled like a type defined elsewhere is not a type
// reference: enum bodies are their own scope.
#pragma once

enum class Part : int
{
    Widget,
    Gadget,
    Other,
};
