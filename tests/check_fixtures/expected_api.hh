// The mini signature surface the flow-rule fixtures call into. The
// pre-pass must harvest load/save/render (Expected returns) and
// annotate (Error return) from this header.
#pragma once

#include <cstddef>
#include <string>

namespace viva::support
{
template <typename T> class Expected;
class Error;
} // namespace viva::support

namespace viva::app
{

class Session
{
  public:
    viva::support::Expected<void> load(const std::string &path);
    viva::support::Expected<void> save(const std::string &path);
    viva::support::Expected<std::size_t>
    render(const std::string &path);
};

viva::support::Error annotate(const std::string &what);

} // namespace viva::app
