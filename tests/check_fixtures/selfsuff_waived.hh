// The reference is waived: the author knows the include order.
#pragma once

class Panel
{
  public:
    // viva-check: allow(include-self-sufficiency): macro-generated context provides Widget
    void attach(const Widget &w);
};
