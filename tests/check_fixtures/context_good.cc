// Propagation with VIVA_ERROR_CONTEXT on the error path: clean.
#include "expected_api.hh"

viva::support::Expected<void>
resave(viva::app::Session &session)
{
    auto saved = session.save("out.trace");
    if (!saved)
        return VIVA_ERROR_CONTEXT(saved.error(), "resave");
    return saved;
}
