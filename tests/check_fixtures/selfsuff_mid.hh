// Middle hop of the include chain: pulls in the definitions so
// headers including *this* header reach them transitively.
#pragma once

#include "core/defs.hh"

class Holder
{
  public:
    Widget w;
};
