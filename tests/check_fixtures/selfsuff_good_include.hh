// Self-sufficient via a direct include.
#pragma once

#include "core/defs.hh"

class Panel
{
  public:
    void attach(const Widget &w);
};
