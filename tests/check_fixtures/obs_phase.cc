// One phase registration; the test drives it against matching, stale
// and missing manifests.
#include "support/obs.hh"

void
setup()
{
    viva::obs::Registry &reg = viva::obs::Registry::global();
    static const auto phase = reg.histogram("demo.phase");
    (void)phase;
}
