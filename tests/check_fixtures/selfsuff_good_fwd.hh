// Self-sufficient via a forward declaration: a reference parameter
// needs no definition.
#pragma once

class Widget;

class Panel
{
  public:
    void attach(const Widget &w);
};
