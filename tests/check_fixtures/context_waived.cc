// A deliberate thin forwarding shim, waived with a rationale.
#include "expected_api.hh"

viva::support::Expected<void>
resave(viva::app::Session &session)
{
    // viva-check: allow(context-on-propagate): one-line shim, context adds nothing
    return session.save("out.trace");
}
