// A scratch phase outside the manifest, waived with a rationale.
#include "support/obs.hh"

void
setup()
{
    viva::obs::Registry &reg = viva::obs::Registry::global();
    static const auto phase =
        reg.histogram("scratch.phase");  // viva-check: allow(obs-phase-manifest): throwaway phase for a local experiment
    (void)phase;
}
