// Two bare propagations: a direct pass-through of a callee's Expected
// and a raw .error() return. Both lose this layer's context frame.
#include "expected_api.hh"

viva::support::Expected<void>
resave(viva::app::Session &session)
{
    return session.save("out.trace");
}

viva::support::Expected<void>
reload(viva::app::Session &session)
{
    auto loaded = session.load("trace.paje");
    if (!loaded)
        return loaded.error();
    return loaded;
}
