// Three discarded Expected results: a plain statement, a second plain
// statement, and an explicit (void) cast -- all must fire.
#include "expected_api.hh"

void
demo(viva::app::Session &session)
{
    session.load("trace.paje");
    session.save("out.trace");
    (void)session.render("whole.svg");
}
