// Self-sufficient transitively: mid.hh includes core/defs.hh.
#pragma once

#include "core/mid.hh"

class Panel
{
  public:
    void attach(const Widget &w);
};
