// The same discards as unchecked_bad.cc, silenced by waivers with
// rationales: trailing, line-above, and file-wide forms.
#include "expected_api.hh"

// viva-check: allow-file(context-on-propagate): fixture exercises unchecked only

void
demo(viva::app::Session &session)
{
    session.load("trace.paje");  // viva-check: allow(unchecked-expected): demo tool, failure is cosmetic
    // viva-check: allow(unchecked-expected): demo tool, failure is cosmetic
    session.save("out.trace");
}
