// The defining header of the self-sufficiency mini-tree: one class,
// one struct, one alias and an enum whose members shadow nothing.
#pragma once

class Widget
{
  public:
    int id = 0;
};

struct Gadget final
{
    double mass = 0.0;
};

using WidgetList = int;
