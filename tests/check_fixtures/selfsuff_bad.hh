// References Widget without including its header or forward-declaring
// it: only compiles when someone else included core/defs.hh first.
#pragma once

class Panel
{
  public:
    void attach(const Widget &w);
};
