// Every Expected result is bound, tested, or passed on: clean.
#include "expected_api.hh"

bool consume(viva::support::Expected<std::size_t> result);

bool
demo(viva::app::Session &session)
{
    auto loaded = session.load("trace.paje");
    if (!loaded)
        return false;
    if (!session.save("out.trace"))
        return false;
    return consume(session.render("whole.svg"));
}
