/**
 * @file
 * Tests for the workloads: DT tree structure, deployments, and the
 * master-worker scheduling policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "platform/builders.hh"
#include "workload/masterworker.hh"
#include "workload/nasdt.hh"

namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vw = viva::workload;

// --- DT parameters and deployments --------------------------------------------

TEST(DtParams, ClassAWhiteHoleHas21Processes)
{
    vw::DtParams params;  // fanout 4, depth 2
    EXPECT_EQ(params.processCount(), 21u);
    EXPECT_EQ(params.leafCount(), 16u);
}

TEST(DtParams, OtherShapes)
{
    vw::DtParams p;
    p.fanout = 2;
    p.depth = 3;
    EXPECT_EQ(p.processCount(), 15u);
    EXPECT_EQ(p.leafCount(), 8u);
    p.fanout = 1;
    p.depth = 4;
    EXPECT_EQ(p.processCount(), 5u);  // a chain
    EXPECT_EQ(p.leafCount(), 1u);
}

TEST(DtDeployment, SequentialFillsFirstClusterFirst)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vw::DtParams params;
    vw::Deployment dep = vw::sequentialDeployment(plat, params);
    ASSERT_EQ(dep.size(), 21u);

    auto adonis = plat.findGroup("adonis");
    // Ranks 0..10 land on adonis (the first 11 hosts by id).
    for (std::size_t r = 0; r <= 10; ++r)
        EXPECT_TRUE(plat.groupIsUnder(plat.host(dep[r]).group, adonis))
            << "rank " << r;
    // Ranks 11..20 land on griffon.
    auto griffon = plat.findGroup("griffon");
    for (std::size_t r = 11; r <= 20; ++r)
        EXPECT_TRUE(plat.groupIsUnder(plat.host(dep[r]).group, griffon))
            << "rank " << r;
}

TEST(DtDeployment, LocalityPacksSubtreesIntoClusters)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vw::DtParams params;
    vw::Deployment dep = vw::localityDeployment(plat, params);
    ASSERT_EQ(dep.size(), 21u);

    // All 21 processes on distinct hosts.
    std::set<vp::HostId> distinct(dep.begin(), dep.end());
    EXPECT_EQ(distinct.size(), 21u);

    // Each forwarder (ranks 1-4) shares a cluster with all 4 children.
    for (std::size_t f = 1; f <= 4; ++f) {
        auto fwd_cluster = plat.host(dep[f]).group;
        for (std::size_t c = 0; c < 4; ++c) {
            std::size_t child = f * 4 + 1 + c;
            EXPECT_EQ(plat.host(dep[child]).group, fwd_cluster)
                << "forwarder " << f << " child " << child;
        }
    }
}

TEST(DtDeployment, SequentialWrapsWhenFewHosts)
{
    vp::Platform p("t");
    auto s = p.addSite("s");
    auto r = p.addRouter("r", s);
    for (int i = 0; i < 5; ++i) {
        auto h = p.addHost("h" + std::to_string(i), 1000.0, s);
        auto l = p.addLink("l" + std::to_string(i), 100.0, 1e-4, s);
        p.connect(p.host(h).vertex, p.router(r).vertex, l);
    }
    vw::DtParams params;
    vw::Deployment dep = vw::sequentialDeployment(p, params);
    EXPECT_EQ(dep[0], dep[5]);  // wraps modulo 5
    EXPECT_EQ(dep[20], dep[0]);
}

// --- DT execution --------------------------------------------------------------

TEST(DtRun, CompletesAndCountsMessages)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat);
    vw::DtParams params;
    params.cycles = 3;
    params.messageMbits = 10.0;
    params.computeMflop = 100.0;

    vw::DtResult result = vw::runNasDtWhiteHole(
        run, params, vw::sequentialDeployment(plat, params));
    EXPECT_GT(result.makespanS, 0.0);
    EXPECT_EQ(result.processes, 21u);
    // Per cycle: 4 source sends + 16 forwarder sends = 20 messages.
    EXPECT_EQ(result.messages, 3u * 20u);
    EXPECT_TRUE(run.engine.idle());
}

TEST(DtRun, LocalityBeatsSequential)
{
    vw::DtParams params;
    params.cycles = 10;

    vp::Platform plat1 = vp::makeTwoClusterPlatform();
    vs::SimulationRun run1(plat1);
    double seq = vw::runNasDtWhiteHole(
                     run1, params, vw::sequentialDeployment(plat1, params))
                     .makespanS;

    vp::Platform plat2 = vp::makeTwoClusterPlatform();
    vs::SimulationRun run2(plat2);
    double loc = vw::runNasDtWhiteHole(
                     run2, params, vw::localityDeployment(plat2, params))
                     .makespanS;

    // The paper reports ~20% improvement; require a clear win here.
    EXPECT_LT(loc, seq * 0.95)
        << "sequential " << seq << " vs locality " << loc;
}

TEST(DtRunDeath, WrongDeploymentSizeAsserts)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat);
    vw::DtParams params;
    vw::Deployment dep(5, vp::HostId{0});
    EXPECT_DEATH(vw::runNasDtWhiteHole(run, params, dep), "deployment");
}

// --- master-worker ---------------------------------------------------------------

namespace
{

/** A star of `n` workers with per-worker bandwidth 100*(i+1) Mbit/s. */
vp::Platform
makeStar(std::size_t n)
{
    vp::Platform p("star");
    auto s = p.addSite("s");
    auto r = p.addRouter("hub", s);
    auto m = p.addHost("master", 1000.0, s);
    auto lm = p.addLink("master-link", 10000.0, 1e-4, s);
    p.connect(p.host(m).vertex, p.router(r).vertex, lm);
    for (std::size_t i = 0; i < n; ++i) {
        auto h = p.addHost("w" + std::to_string(i), 1000.0, s);
        auto l = p.addLink("wl" + std::to_string(i),
                           100.0 * double(i + 1), 1e-4, s);
        p.connect(p.host(h).vertex, p.router(r).vertex, l);
    }
    return p;
}

} // namespace

TEST(MasterWorker, AllTasksComplete)
{
    vp::Platform plat = makeStar(4);
    vs::SimulationRun run(plat);
    vw::MwParams params;
    params.master = plat.findHost("master");
    params.workers = vw::allHostsExcept(plat, {params.master});
    params.totalTasks = 40;
    params.taskMflop = 500.0;
    params.taskInputMbits = 10.0;

    vw::MasterWorkerApp app(run, params, vs::kDefaultTag);
    app.start();
    run.engine.run();

    EXPECT_TRUE(app.finished());
    vw::MwResult r = app.result();
    EXPECT_EQ(r.tasksCompleted, 40u);
    EXPECT_GT(r.makespanS, 0.0);
    std::size_t sum = 0;
    for (auto n : r.tasksPerWorker)
        sum += n;
    EXPECT_EQ(sum, 40u);
}

TEST(MasterWorker, EffectiveBandwidthIsHarmonicPathCapacity)
{
    vp::Platform plat = makeStar(3);
    vs::SimulationRun run(plat);
    vw::MwParams params;
    params.master = plat.findHost("master");
    params.workers = {plat.findHost("w0"), plat.findHost("w1"),
                      plat.findHost("w2")};
    vw::MasterWorkerApp app(run, params, vs::kDefaultTag);
    // Route: master-link (10000) + worker link (100 * (i+1)).
    EXPECT_NEAR(app.effectiveBandwidth(0),
                1.0 / (1.0 / 10000.0 + 1.0 / 100.0), 1e-9);
    EXPECT_NEAR(app.effectiveBandwidth(1),
                1.0 / (1.0 / 10000.0 + 1.0 / 200.0), 1e-9);
    // Ordering follows the worker links: faster worker, higher value.
    EXPECT_GT(app.effectiveBandwidth(2), app.effectiveBandwidth(1));
    EXPECT_GT(app.effectiveBandwidth(1), app.effectiveBandwidth(0));
}

TEST(MasterWorker, BandwidthCentricPrefersFastWorkers)
{
    // Communication-heavy tasks so the master's serving order dominates:
    // the highest-bandwidth worker should receive clearly more tasks.
    vp::Platform plat = makeStar(6);
    vs::SimulationRun run(plat);
    vw::MwParams params;
    params.master = plat.findHost("master");
    params.workers = vw::allHostsExcept(plat, {params.master});
    params.totalTasks = 60;
    params.taskInputMbits = 50.0;   // heavy input
    params.taskMflop = 50.0;        // trivial compute
    params.policy = vw::MwPolicy::BandwidthCentric;

    vw::MasterWorkerApp app(run, params, vs::kDefaultTag);
    app.start();
    run.engine.run();
    ASSERT_TRUE(app.finished());

    vw::MwResult r = app.result();
    // workers are ordered by host id == bandwidth order (w0 slowest).
    EXPECT_GT(r.tasksPerWorker.back(), r.tasksPerWorker.front())
        << "fastest worker should get more tasks than the slowest";
}

TEST(MasterWorker, FifoSpreadsMoreEvenlyThanBandwidthCentric)
{
    auto spread = [](vw::MwPolicy policy) {
        vp::Platform plat = makeStar(6);
        vs::SimulationRun run(plat);
        vw::MwParams params;
        params.master = plat.findHost("master");
        params.workers = vw::allHostsExcept(plat, {params.master});
        params.totalTasks = 60;
        params.taskInputMbits = 50.0;
        params.taskMflop = 50.0;
        params.policy = policy;
        vw::MasterWorkerApp app(run, params, vs::kDefaultTag);
        app.start();
        run.engine.run();
        vw::MwResult r = app.result();
        std::size_t lo = r.tasksPerWorker[0], hi = r.tasksPerWorker[0];
        for (auto n : r.tasksPerWorker) {
            lo = std::min(lo, n);
            hi = std::max(hi, n);
        }
        return hi - lo;
    };

    EXPECT_LE(spread(vw::MwPolicy::Fifo),
              spread(vw::MwPolicy::BandwidthCentric));
}

TEST(MasterWorker, TwoAppsInterfereOnSharedWorkers)
{
    vp::Platform plat = makeStar(4);
    vs::SimulationRun run(plat, {"a", "b"});
    vw::MwParams pa, pb;
    pa.name = "a";
    pb.name = "b";
    pa.master = pb.master = plat.findHost("master");
    pa.workers = pb.workers = vw::allHostsExcept(plat, {pa.master});
    pa.totalTasks = pb.totalTasks = 20;
    pa.taskMflop = pb.taskMflop = 2000.0;

    vw::MasterWorkerApp app_a(run, pa, 1);
    vw::MasterWorkerApp app_b(run, pb, 2);
    app_a.start();
    app_b.start();
    run.engine.run();

    EXPECT_TRUE(app_a.finished());
    EXPECT_TRUE(app_b.finished());
    // Both apps have per-tag traces on shared hosts.
    auto m1 = run.trace.findMetric("power_used:a");
    auto m2 = run.trace.findMetric("power_used:b");
    ASSERT_NE(m1, viva::trace::kNoMetric);
    ASSERT_NE(m2, viva::trace::kNoMetric);
}

TEST(MasterWorker, AllHostsExceptFilters)
{
    vp::Platform plat = makeStar(3);
    auto m = plat.findHost("master");
    auto workers = vw::allHostsExcept(plat, {m});
    EXPECT_EQ(workers.size(), plat.hostCount() - 1);
    for (auto w : workers)
        EXPECT_NE(w, m);
}
