/**
 * @file
 * Tests for the paper's extension features: temporal/spatial operator
 * selection, state aggregation, composition (pie) glyphs, statistical
 * indicators, treemaps, Gantt charts, and the session/command plumbing
 * that exposes them.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "agg/aggregate.hh"
#include "agg/states.hh"
#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "support/strings.hh"
#include "trace/builder.hh"
#include "viz/gantt.hh"
#include "viz/scene.hh"
#include "viz/svg.hh"
#include "viz/treemap.hh"
#include "workload/masterworker.hh"
#include "workload/nasdt.hh"

namespace va = viva::agg;
namespace vap = viva::app;
namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vt = viva::trace;
namespace vv = viva::viz;
namespace vw = viva::workload;

namespace
{

std::string
tempDir()
{
    auto dir =
        std::filesystem::temp_directory_path() / "viva_extensions_test";
    std::filesystem::create_directories(dir);
    return dir.string();
}

} // namespace

// --- temporal operators --------------------------------------------------------

TEST(TemporalOps, MaxMinIntegral)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    auto h = b.host("h");
    vt::Trace &t = b.trace();
    t.variable(h, power).set(0.0, 10.0);
    t.variable(h, power).set(2.0, 50.0);
    t.variable(h, power).set(4.0, 20.0);
    vt::Trace trace = b.take();

    va::Aggregator agg(trace);
    va::TimeSlice slice{0.0, 6.0};
    EXPECT_DOUBLE_EQ(agg.value(h, power, slice, va::SpatialOp::Sum,
                               va::TemporalOp::Average),
                     (10 * 2 + 50 * 2 + 20 * 2) / 6.0);
    EXPECT_DOUBLE_EQ(agg.value(h, power, slice, va::SpatialOp::Sum,
                               va::TemporalOp::Max),
                     50.0);
    EXPECT_DOUBLE_EQ(agg.value(h, power, slice, va::SpatialOp::Sum,
                               va::TemporalOp::Min),
                     10.0);
    EXPECT_DOUBLE_EQ(agg.value(h, power, slice, va::SpatialOp::Sum,
                               va::TemporalOp::Integral),
                     160.0);
}

TEST(TemporalOps, MixedRequestsInOneView)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    auto used = b.powerUsedMetric();
    b.beginGroup("g", vt::ContainerKind::Cluster);
    auto h1 = b.host("h1");
    auto h2 = b.host("h2");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.variable(h1, power).set(0.0, 10.0);
    t.variable(h2, power).set(0.0, 30.0);
    t.variable(h1, used).set(0.0, 4.0);
    t.variable(h2, used).set(0.0, 6.0);
    vt::Trace trace = b.take();
    auto g = trace.findByName("g");

    va::HierarchyCut cut(trace);
    cut.aggregate(g);
    std::vector<va::MetricRequest> requests{
        va::MetricRequest(power, va::SpatialOp::Sum),
        va::MetricRequest(power, va::SpatialOp::Max),
        va::MetricRequest(used, va::SpatialOp::Average),
    };
    va::View view = va::buildView(trace, cut, {0.0, 1.0}, requests);
    ASSERT_EQ(view.nodes.size(), 1u);
    EXPECT_DOUBLE_EQ(view.nodes[0].values[0], 40.0);  // sum
    EXPECT_DOUBLE_EQ(view.nodes[0].values[1], 30.0);  // max
    EXPECT_DOUBLE_EQ(view.nodes[0].values[2], 5.0);   // average
    EXPECT_EQ(view.requests.size(), 3u);
}

// --- state aggregation -----------------------------------------------------------

TEST(StateShares, FractionsAndClipping)
{
    vt::TraceBuilder b;
    b.beginGroup("g", vt::ContainerKind::Cluster);
    auto h1 = b.host("h1");
    auto h2 = b.host("h2");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.addState(h1, 0.0, 4.0, "compute");
    t.addState(h1, 4.0, 6.0, "wait");
    t.addState(h2, 0.0, 2.0, "compute");
    vt::Trace trace = b.take();
    auto g = trace.findByName("g");

    // Whole window: compute 6s, wait 2s.
    auto shares = va::stateShares(trace, g, {0.0, 10.0});
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_EQ(shares[0].state, "compute");
    EXPECT_DOUBLE_EQ(shares[0].seconds, 6.0);
    EXPECT_DOUBLE_EQ(shares[0].fraction, 0.75);
    EXPECT_DOUBLE_EQ(shares[1].fraction, 0.25);
    EXPECT_DOUBLE_EQ(va::observedStateTime(trace, g, {0.0, 10.0}), 8.0);

    // A slice clips the records: [3, 5) sees 1s compute + 1s wait.
    shares = va::stateShares(trace, g, {3.0, 5.0});
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_DOUBLE_EQ(shares[0].fraction, 0.5);

    // Fractions always sum to 1 when anything was observed.
    double sum = 0;
    for (const auto &s : shares)
        sum += s.fraction;
    EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(StateShares, EmptyWhenNoStates)
{
    vt::Trace t = vt::makeFigure1Trace();
    EXPECT_TRUE(va::stateShares(t, t.root(), {0.0, 12.0}).empty());
    EXPECT_DOUBLE_EQ(va::observedStateTime(t, t.root(), {0.0, 12.0}),
                     0.0);
}

TEST(StateShares, ScopedToSubtree)
{
    vt::TraceBuilder b;
    auto h1 = b.host("h1");
    auto h2 = b.host("h2");
    vt::Trace &t = b.trace();
    t.addState(h1, 0.0, 1.0, "a");
    t.addState(h2, 0.0, 3.0, "b");
    vt::Trace trace = b.take();

    auto shares = va::stateShares(trace, h1, {0.0, 10.0});
    ASSERT_EQ(shares.size(), 1u);
    EXPECT_EQ(shares[0].state, "a");
}

TEST(WorkloadStates, MasterWorkerRecordsCompute)
{
    vp::Platform p("t");
    auto s = p.addSite("s");
    auto r = p.addRouter("r", s);
    for (int i = 0; i < 3; ++i) {
        auto h = p.addHost("h" + std::to_string(i), 1000.0, s);
        auto l = p.addLink("l" + std::to_string(i), 100.0, 1e-4, s);
        p.connect(p.host(h).vertex, p.router(r).vertex, l);
    }
    vs::SimulationRun run(p);
    vw::MwParams params;
    params.master = vp::HostId{0};
    params.workers = {vp::HostId{1}, vp::HostId{2}};
    params.totalTasks = 6;
    params.taskMflop = 500.0;
    params.recordStates = true;
    vw::MasterWorkerApp app(run, params, vs::kDefaultTag);
    app.start();
    run.engine.run();

    ASSERT_EQ(run.trace.states().size(), 6u);
    for (const auto &state : run.trace.states()) {
        EXPECT_EQ(state.state, "compute:app");
        EXPECT_LT(state.begin, state.end);
    }
    // Total recorded compute time equals tasks x (mflop / power).
    double total = va::observedStateTime(run.trace, run.trace.root(),
                                         run.trace.span());
    EXPECT_NEAR(total, 6.0 * 500.0 / 1000.0, 1e-6);
}

TEST(WorkloadStates, DtRecordsForwardAndConsume)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat);
    vw::DtParams params;
    params.cycles = 2;
    params.recordStates = true;
    vw::runNasDtWhiteHole(run, params,
                          vw::sequentialDeployment(plat, params));

    std::size_t forward = 0, consume = 0;
    for (const auto &state : run.trace.states()) {
        if (state.state == "forward")
            ++forward;
        else if (state.state == "consume")
            ++consume;
    }
    // Per cycle: 4 forwarders forward, 16 leaves consume.
    EXPECT_EQ(forward, 2u * 4u);
    EXPECT_EQ(consume, 2u * 16u);
}

// --- composition (pie) glyphs -----------------------------------------------------

namespace
{

/** A cluster of two hosts with two per-app usage metrics. */
struct CompositionFixture
{
    vt::Trace trace;
    vt::ContainerId g, h1, h2;
    vt::MetricId power, used_a, used_b;

    CompositionFixture()
    {
        vt::TraceBuilder b;
        power = b.powerMetric();
        b.beginGroup("g", vt::ContainerKind::Cluster);
        h1 = b.host("h1");
        h2 = b.host("h2");
        b.endGroup();
        vt::Trace &t = b.trace();
        used_a = t.addMetric("power_used:a", "MFlops",
                             vt::MetricNature::Utilization, power);
        used_b = t.addMetric("power_used:b", "MFlops",
                             vt::MetricNature::Utilization, power);
        t.variable(h1, power).set(0.0, 100.0);
        t.variable(h2, power).set(0.0, 100.0);
        t.variable(h1, used_a).set(0.0, 50.0);
        t.variable(h2, used_b).set(0.0, 30.0);
        trace = b.take();
        g = trace.findByName("g");
    }
};

} // namespace

TEST(Composition, SegmentsFromPerAppMetrics)
{
    CompositionFixture f;
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::CompositionRule rule;
    rule.parts = {f.used_a, f.used_b};
    rule.total = f.power;
    mapping.setComposition(rule);

    // referencedMetrics must now include the parts and the total.
    auto metrics = mapping.referencedMetrics();
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), f.used_a),
              metrics.end());

    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.g);
    va::View view = va::buildView(f.trace, cut, {0.0, 1.0}, metrics);
    vv::TypeScaling scaling;
    viva::layout::Snapshot pos{{f.g.value(), {0.0, 0.0}}};
    vv::Scene scene =
        vv::composeScene(view, f.trace, pos, mapping, scaling);

    ASSERT_EQ(scene.nodes.size(), 1u);
    ASSERT_EQ(scene.nodes[0].segments.size(), 2u);
    // Shares of total power (200): 50/200 and 30/200.
    EXPECT_DOUBLE_EQ(scene.nodes[0].segments[0].fraction, 0.25);
    EXPECT_DOUBLE_EQ(scene.nodes[0].segments[1].fraction, 0.15);
    // Default categorical colors assigned.
    EXPECT_NE(scene.nodes[0].segments[0].color,
              scene.nodes[0].segments[1].color);
}

TEST(Composition, LeavesGetNoCompositionPie)
{
    CompositionFixture f;
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::CompositionRule rule;
    rule.parts = {f.used_a};
    rule.total = f.power;
    mapping.setComposition(rule);

    va::HierarchyCut cut(f.trace);  // leaves visible
    va::View view = va::buildView(f.trace, cut, {0.0, 1.0},
                                  mapping.referencedMetrics());
    vv::TypeScaling scaling;
    viva::layout::Snapshot pos{{f.h1.value(), {0, 0}}, {f.h2.value(), {10, 0}}};
    vv::Scene scene =
        vv::composeScene(view, f.trace, pos, mapping, scaling);
    for (const auto &node : scene.nodes)
        EXPECT_TRUE(node.segments.empty());
}

TEST(Composition, StatePiesOverrideComposition)
{
    CompositionFixture f;
    f.trace.addState(f.h1, 0.0, 1.0, "busy");
    f.trace.addState(f.h1, 1.0, 4.0, "idle");

    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.g);
    va::View view = va::buildView(f.trace, cut, {0.0, 4.0},
                                  mapping.referencedMetrics());
    vv::TypeScaling scaling;
    viva::layout::Snapshot pos{{f.g.value(), {0.0, 0.0}}};
    vv::SceneOptions options;
    options.statePies = true;
    vv::Scene scene = vv::composeScene(view, f.trace, pos, mapping,
                                       scaling, options);
    ASSERT_EQ(scene.nodes.size(), 1u);
    ASSERT_EQ(scene.nodes[0].segments.size(), 2u);
    EXPECT_EQ(scene.nodes[0].segments[0].label, "idle");  // 75% first
    EXPECT_DOUBLE_EQ(scene.nodes[0].segments[0].fraction, 0.75);
}

TEST(Composition, PieRenderedInSvg)
{
    CompositionFixture f;
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::CompositionRule rule;
    rule.parts = {f.used_a, f.used_b};
    rule.total = f.power;
    mapping.setComposition(rule);

    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.g);
    va::View view = va::buildView(f.trace, cut, {0.0, 1.0},
                                  mapping.referencedMetrics());
    vv::TypeScaling scaling;
    viva::layout::Snapshot pos{{f.g.value(), {0.0, 0.0}}};
    vv::Scene scene =
        vv::composeScene(view, f.trace, pos, mapping, scaling);

    std::ostringstream out;
    vv::writeSvg(scene, out);
    EXPECT_NE(out.str().find("<path d=\"M"), std::string::npos);
}

TEST(CompositionDeath, BadRulesAssert)
{
    vv::VisualMapping mapping;
    vv::CompositionRule empty;
    empty.total = vt::MetricId{0};
    EXPECT_DEATH(mapping.setComposition(empty), "parts");
}

// --- statistical indicators -------------------------------------------------------

TEST(Indicators, HeterogeneityFlagsUnevenAggregates)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("uneven", vt::ContainerKind::Cluster);
    auto h1 = b.host("h1");
    auto h2 = b.host("h2");
    b.endGroup();
    b.beginGroup("even", vt::ContainerKind::Cluster);
    auto h3 = b.host("h3");
    auto h4 = b.host("h4");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.variable(h1, power).set(0.0, 1.0);
    t.variable(h2, power).set(0.0, 99.0);   // wildly different
    t.variable(h3, power).set(0.0, 50.0);
    t.variable(h4, power).set(0.0, 50.0);   // identical
    vt::Trace trace = b.take();

    vv::VisualMapping mapping = vv::VisualMapping::defaults(trace);
    va::HierarchyCut cut(trace);
    cut.aggregateToDepth(1);
    va::View view =
        va::buildView(trace, cut, {0.0, 1.0},
                      mapping.referencedMetrics(), va::SpatialOp::Sum,
                      /*with_stats=*/true);
    vv::TypeScaling scaling;
    viva::layout::Snapshot pos{
        {trace.findByName("uneven").value(), {0, 0}},
        {trace.findByName("even").value(), {100, 0}}};
    vv::Scene scene =
        vv::composeScene(view, trace, pos, mapping, scaling);

    double uneven_h = -1, even_h = -1;
    for (const auto &n : scene.nodes) {
        if (n.label == "uneven")
            uneven_h = n.heterogeneity;
        if (n.label == "even")
            even_h = n.heterogeneity;
    }
    EXPECT_GT(uneven_h, 0.9);  // cv of {1, 99} is 0.98
    EXPECT_NEAR(even_h, 0.0, 1e-12);

    std::ostringstream out;
    vv::writeSvg(scene, out);
    EXPECT_NE(out.str().find("stroke-dasharray"), std::string::npos);
    EXPECT_NE(out.str().find("heterogeneity"), std::string::npos);
}

TEST(Indicators, NoRingWithoutStats)
{
    vt::Trace trace = vt::makeFigure1Trace();
    vap::Session session(std::move(trace));
    std::ostringstream out;
    vv::writeSvg(session.scene(), out);
    EXPECT_EQ(out.str().find("stroke-dasharray"), std::string::npos);
}

// --- colors -----------------------------------------------------------------------

TEST(Colors, CategoricalCycles)
{
    EXPECT_EQ(vv::palette::categorical(0), vv::palette::categorical(8));
    EXPECT_NE(vv::palette::categorical(0), vv::palette::categorical(1));
}

TEST(Colors, NameColorsAreStable)
{
    EXPECT_EQ(vv::colorForName("compute"), vv::colorForName("compute"));
}

TEST(Colors, XmlEscape)
{
    EXPECT_EQ(viva::support::xmlEscape("a<b>&\"'"),
              "a&lt;b&gt;&amp;&quot;&apos;");
}

// --- treemap ----------------------------------------------------------------------

namespace
{

vt::Trace
treemapFixture()
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("s1", vt::ContainerKind::Site);
    auto h1 = b.host("h1");
    auto h2 = b.host("h2");
    b.endGroup();
    b.beginGroup("s2", vt::ContainerKind::Site);
    auto h3 = b.host("h3");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.variable(h1, power).set(0.0, 10.0);
    t.variable(h2, power).set(0.0, 30.0);
    t.variable(h3, power).set(0.0, 60.0);
    return b.take();
}

const vv::TreemapCell *
cellOf(const vv::Treemap &map, const std::string &label)
{
    for (const auto &cell : map.cells)
        if (cell.label == label)
            return &cell;
    return nullptr;
}

} // namespace

TEST(Treemap, AreasProportionalToValues)
{
    vt::Trace trace = treemapFixture();
    vv::TreemapOptions options;
    options.width = 100;
    options.height = 100;
    options.padding = 0;
    vv::Treemap map = vv::buildTreemap(
        trace, trace.findMetric("power"), {0.0, 1.0}, options);

    const auto *s1 = cellOf(map, "s1");
    const auto *s2 = cellOf(map, "s2");
    const auto *h3 = cellOf(map, "h3");
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    ASSERT_NE(h3, nullptr);
    // Total value 100 over a 10000 px^2 canvas: 100 px^2 per unit.
    EXPECT_NEAR(s1->area(), 4000.0, 1e-6);
    EXPECT_NEAR(s2->area(), 6000.0, 1e-6);
    EXPECT_NEAR(h3->area(), 6000.0, 1e-6);
    EXPECT_FALSE(s1->leaf);
    EXPECT_TRUE(h3->leaf);
}

TEST(Treemap, ChildrenNestInsideParents)
{
    vt::Trace trace = treemapFixture();
    vv::TreemapOptions options;
    options.width = 200;
    options.height = 100;
    options.padding = 2;
    vv::Treemap map = vv::buildTreemap(
        trace, trace.findMetric("power"), {0.0, 1.0}, options);

    const auto *s1 = cellOf(map, "s1");
    for (const char *name : {"h1", "h2"}) {
        const auto *child = cellOf(map, name);
        ASSERT_NE(child, nullptr);
        EXPECT_GE(child->x, s1->x);
        EXPECT_GE(child->y, s1->y);
        EXPECT_LE(child->x + child->width, s1->x + s1->width + 1e-9);
        EXPECT_LE(child->y + child->height, s1->y + s1->height + 1e-9);
    }
}

TEST(Treemap, SiblingsDoNotOverlap)
{
    vt::Trace trace = treemapFixture();
    vv::TreemapOptions options;
    options.padding = 0;
    vv::Treemap map = vv::buildTreemap(
        trace, trace.findMetric("power"), {0.0, 1.0}, options);
    const auto *h1 = cellOf(map, "h1");
    const auto *h2 = cellOf(map, "h2");
    bool disjoint_x = h1->x + h1->width <= h2->x + 1e-9 ||
                      h2->x + h2->width <= h1->x + 1e-9;
    bool disjoint_y = h1->y + h1->height <= h2->y + 1e-9 ||
                      h2->y + h2->height <= h1->y + 1e-9;
    EXPECT_TRUE(disjoint_x || disjoint_y);
}

TEST(Treemap, MaxDepthCutsSubtrees)
{
    vt::Trace trace = treemapFixture();
    vv::TreemapOptions options;
    options.maxDepth = 1;
    vv::Treemap map = vv::buildTreemap(
        trace, trace.findMetric("power"), {0.0, 1.0}, options);
    EXPECT_EQ(cellOf(map, "h1"), nullptr);
    const auto *s1 = cellOf(map, "s1");
    ASSERT_NE(s1, nullptr);
    EXPECT_TRUE(s1->leaf);  // rendered as a leaf at the cut
}

TEST(Treemap, ZeroValueSubtreesDropped)
{
    vt::Trace trace = treemapFixture();
    // Bandwidth exists as a metric but no variable carries it.
    auto bw = trace.findMetric("bandwidth");
    vv::Treemap map =
        vv::buildTreemap(trace, bw, {0.0, 1.0}, vv::TreemapOptions());
    EXPECT_TRUE(map.cells.empty());
}

TEST(Treemap, SvgOutput)
{
    vt::Trace trace = treemapFixture();
    vv::Treemap map = vv::buildTreemap(
        trace, trace.findMetric("power"), {0.0, 1.0},
        vv::TreemapOptions());
    std::ostringstream out;
    vv::writeTreemapSvg(map, out, "a map");
    EXPECT_NE(out.str().find("<svg"), std::string::npos);
    EXPECT_NE(out.str().find("a map"), std::string::npos);
    EXPECT_NE(out.str().find("<title>"), std::string::npos);
}

TEST(Treemap, GridScaleIsFast)
{
    vp::Platform p = vp::makeGrid5000();
    vt::Trace t;
    vp::mirrorPlatform(p, t);
    vv::Treemap map = vv::buildTreemap(t, t.findMetric("power"),
                                       {0.0, 1.0},
                                       vv::TreemapOptions());
    // 2170 host cells + 30 clusters + 12 sites + grid.
    EXPECT_GT(map.cells.size(), 2200u);
}

// --- gantt ------------------------------------------------------------------------

TEST(Gantt, RowsAndClipping)
{
    vt::TraceBuilder b;
    auto h1 = b.host("alpha");
    auto h2 = b.host("beta");
    vt::Trace &t = b.trace();
    t.addState(h1, 0.0, 5.0, "compute");
    t.addState(h1, 5.0, 8.0, "wait");
    t.addState(h2, 2.0, 6.0, "compute");
    vt::Trace trace = b.take();

    vv::GanttChart chart = vv::buildGantt(trace, {1.0, 7.0});
    ASSERT_EQ(chart.rows.size(), 2u);
    EXPECT_EQ(chart.rows[0].label, "alpha");  // sorted by name
    ASSERT_EQ(chart.rows[0].bars.size(), 2u);
    // Clipped to the window.
    EXPECT_DOUBLE_EQ(chart.rows[0].bars[0].begin, 1.0);
    EXPECT_DOUBLE_EQ(chart.rows[0].bars[1].end, 7.0);
    // Equal states share a color across rows.
    EXPECT_EQ(chart.rows[0].bars[0].color, chart.rows[1].bars[0].color);
}

TEST(Gantt, ScopeAndMaxRows)
{
    vt::TraceBuilder b;
    b.beginGroup("g1", vt::ContainerKind::Cluster);
    auto h1 = b.host("h1");
    b.endGroup();
    b.beginGroup("g2", vt::ContainerKind::Cluster);
    auto h2 = b.host("h2");
    auto h3 = b.host("h3");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.addState(h1, 0.0, 1.0, "s");
    t.addState(h2, 0.0, 1.0, "s");
    t.addState(h3, 0.0, 1.0, "s");
    vt::Trace trace = b.take();

    vv::GanttOptions options;
    options.scope = trace.findByName("g2");
    vv::GanttChart chart = vv::buildGantt(trace, {0.0, 1.0}, options);
    EXPECT_EQ(chart.rows.size(), 2u);

    options.scope = trace.root();
    options.maxRows = 2;
    chart = vv::buildGantt(trace, {0.0, 1.0}, options);
    EXPECT_EQ(chart.rows.size(), 2u);
}

TEST(Gantt, SvgOutput)
{
    vt::TraceBuilder b;
    auto h = b.host("h");
    b.trace().addState(h, 0.0, 2.0, "busy");
    vt::Trace trace = b.take();
    vv::GanttChart chart = vv::buildGantt(trace, {0.0, 2.0});
    std::ostringstream out;
    vv::GanttSvgOptions options;
    options.title = "timeline";
    vv::writeGanttSvg(chart, out, options);
    EXPECT_NE(out.str().find("timeline"), std::string::npos);
    EXPECT_NE(out.str().find("busy"), std::string::npos);
    EXPECT_NE(out.str().find("<line"), std::string::npos);  // axis
}

// --- session / commands plumbing ----------------------------------------------------

TEST(SessionExtensions, RenderTreemapAndGantt)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat);
    vw::DtParams params;
    params.cycles = 2;
    params.recordStates = true;
    vw::runNasDtWhiteHole(run, params,
                          vw::sequentialDeployment(plat, params));

    vap::Session session(std::move(run.trace));
    std::string dir = tempDir();
    EXPECT_TRUE(session.renderTreemap(dir + "/map.svg", "power"));
    EXPECT_FALSE(session.renderTreemap(dir + "/map.svg", "nope"));
    auto rows = session.renderGantt(dir + "/gantt.svg");
    ASSERT_TRUE(rows.ok()) << rows.error().toString();
    EXPECT_GT(*rows, 0u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/map.svg"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/gantt.svg"));
}

TEST(CommandsExtensions, TreemapAndGantt)
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    std::string dir = tempDir();
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("treemap power " + dir + "/t.svg", out));
    EXPECT_FALSE(cli.execute("treemap bogus " + dir + "/t.svg", out));
    EXPECT_TRUE(cli.execute("gantt " + dir + "/g.svg", out));
    EXPECT_TRUE(std::filesystem::exists(dir + "/t.svg"));
}

// --- process containers -----------------------------------------------------------

TEST(ProcessContainers, DtRanksNestUnderHosts)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat);
    vw::DtParams params;
    params.cycles = 2;
    params.recordStates = true;
    params.createProcessContainers = true;
    vw::Deployment dep = vw::sequentialDeployment(plat, params);
    vw::runNasDtWhiteHole(run, params, dep);

    // 21 rank containers, each a Process under the right host.
    auto processes =
        run.trace.containersOfKind(vt::ContainerKind::Process);
    ASSERT_EQ(processes.size(), 21u);
    auto rank0 = run.trace.findByName("rank-0");
    ASSERT_NE(rank0, vt::kNoContainer);
    EXPECT_EQ(run.trace.container(rank0).parent,
              run.mirror.hostContainer[dep[0].index()]);

    // States attach to ranks, not hosts.
    for (const auto &state : run.trace.states()) {
        EXPECT_EQ(run.trace.container(state.container).kind,
                  vt::ContainerKind::Process);
    }

    // Host-level aggregation still sees the host's power (the host is
    // no longer a leaf, but subtree aggregation keeps its variable).
    viva::agg::Aggregator agg(run.trace);
    double host_power = agg.value(run.mirror.hostContainer[dep[0].index()],
                                  run.mirror.power, {0.0, 1.0});
    EXPECT_GT(host_power, 0.0);
}

TEST(ProcessContainers, WorkerProcessesPerApp)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat, {"a", "b"});
    vw::MwParams pa;
    pa.name = "a";
    pa.master = vp::HostId{0};
    pa.workers = {vp::HostId{1}, vp::HostId{2}, vp::HostId{3}};
    pa.totalTasks = 6;
    pa.taskMflop = 100.0;
    pa.recordStates = true;
    pa.createProcessContainers = true;
    vw::MwParams pb = pa;
    pb.name = "b";

    vw::MasterWorkerApp a(run, pa, 1);
    vw::MasterWorkerApp b(run, pb, 2);
    a.start();
    b.start();
    run.engine.run();

    // Two process containers per worker host, one per app.
    auto host1 = run.mirror.hostContainer[1];
    EXPECT_NE(run.trace.findChild(host1, "worker-a"), vt::kNoContainer);
    EXPECT_NE(run.trace.findChild(host1, "worker-b"), vt::kNoContainer);

    // The Gantt over this trace has one row per active worker process.
    viva::viz::GanttChart chart =
        viva::viz::buildGantt(run.trace, run.trace.span());
    for (const auto &row : chart.rows) {
        EXPECT_EQ(run.trace.container(row.id).kind,
                  vt::ContainerKind::Process);
    }
    EXPECT_GE(chart.rows.size(), 2u);
}
