/**
 * @file
 * Unit tests for viva::platform: construction, routing, the canned
 * platforms and the trace mirror.
 */

#include <gtest/gtest.h>

#include "platform/builders.hh"
#include "platform/platform.hh"
#include "platform/platform_trace.hh"
#include "support/random.hh"

namespace vp = viva::platform;
namespace vt = viva::trace;

namespace
{

/** A dumbbell: h0 - l0 - r0 - l2 - r1 - l1 - h1, plus h2 on r0. */
vp::Platform
makeDumbbell()
{
    vp::Platform p("test");
    auto site = p.addSite("site");
    auto r0 = p.addRouter("r0", site);
    auto r1 = p.addRouter("r1", site);
    auto h0 = p.addHost("h0", 1000.0, site);
    auto h1 = p.addHost("h1", 2000.0, site);
    auto h2 = p.addHost("h2", 3000.0, site);
    auto l0 = p.addLink("l0", 100.0, 1e-3, site);
    auto l1 = p.addLink("l1", 100.0, 1e-3, site);
    auto l2 = p.addLink("l2", 50.0, 2e-3, site);
    auto l3 = p.addLink("l3", 100.0, 1e-3, site);
    p.connect(p.host(h0).vertex, p.router(r0).vertex, l0);
    p.connect(p.host(h1).vertex, p.router(r1).vertex, l1);
    p.connect(p.router(r0).vertex, p.router(r1).vertex, l2);
    p.connect(p.host(h2).vertex, p.router(r0).vertex, l3);
    return p;
}

} // namespace

TEST(Platform, BasicCounts)
{
    vp::Platform p = makeDumbbell();
    EXPECT_EQ(p.hostCount(), 3u);
    EXPECT_EQ(p.routerCount(), 2u);
    EXPECT_EQ(p.linkCount(), 4u);
    EXPECT_EQ(p.groupCount(), 2u);  // grid + site
    EXPECT_EQ(p.vertexCount(), 5u);
}

TEST(Platform, LookupByName)
{
    vp::Platform p = makeDumbbell();
    EXPECT_EQ(p.findHost("h1"), vp::HostId{1});
    EXPECT_EQ(p.findHost("nope"), vp::kNoHost);
    EXPECT_EQ(p.findGroup("site"), vp::GroupId{1});
    EXPECT_EQ(p.findGroup("test"), p.grid());
}

TEST(Platform, GroupHierarchy)
{
    vp::Platform p("g");
    auto site = p.addSite("s");
    auto cluster = p.addCluster("c", site);
    EXPECT_TRUE(p.groupIsUnder(cluster, site));
    EXPECT_TRUE(p.groupIsUnder(cluster, p.grid()));
    EXPECT_FALSE(p.groupIsUnder(site, cluster));
    EXPECT_EQ(p.groupPath(cluster), "g/s/c");
}

TEST(Platform, HostsUnder)
{
    vp::Platform p("g");
    auto s1 = p.addSite("s1");
    auto s2 = p.addSite("s2");
    p.addHost("a", 1.0, s1);
    p.addHost("b", 1.0, s1);
    p.addHost("c", 1.0, s2);
    EXPECT_EQ(p.hostsUnder(s1).size(), 2u);
    EXPECT_EQ(p.hostsUnder(s2).size(), 1u);
    EXPECT_EQ(p.hostsUnder(p.grid()).size(), 3u);
}

TEST(Platform, RouteShortestPath)
{
    vp::Platform p = makeDumbbell();
    const vp::Route &r = p.route(vp::HostId{0}, vp::HostId{1});  // h0 -> h1
    ASSERT_EQ(r.links.size(), 3u);
    EXPECT_EQ(r.links[0], vp::LinkId{0});  // l0
    EXPECT_EQ(r.links[1], vp::LinkId{2});  // l2
    EXPECT_EQ(r.links[2], vp::LinkId{1});  // l1
    EXPECT_DOUBLE_EQ(r.latencyS, 1e-3 + 2e-3 + 1e-3);
}

TEST(Platform, RouteSameSideSkipsBackbone)
{
    vp::Platform p = makeDumbbell();
    const vp::Route &r = p.route(vp::HostId{0}, vp::HostId{2});  // h0 -> h2 via r0 only
    ASSERT_EQ(r.links.size(), 2u);
    EXPECT_EQ(r.links[0], vp::LinkId{0});
    EXPECT_EQ(r.links[1], vp::LinkId{3});
}

TEST(Platform, RouteToSelfIsEmpty)
{
    vp::Platform p = makeDumbbell();
    const vp::Route &r = p.route(vp::HostId{1}, vp::HostId{1});
    EXPECT_TRUE(r.links.empty());
    EXPECT_DOUBLE_EQ(r.latencyS, 0.0);
}

TEST(Platform, RouteIsCached)
{
    vp::Platform p = makeDumbbell();
    const vp::Route &a = p.route(vp::HostId{0}, vp::HostId{1});
    const vp::Route &b = p.route(vp::HostId{0}, vp::HostId{1});
    EXPECT_EQ(&a, &b);  // same object: the cache hit
}

TEST(PlatformDeath, DisconnectedHostsPanic)
{
    vp::Platform p("g");
    auto s = p.addSite("s");
    p.addHost("a", 1.0, s);
    p.addHost("b", 1.0, s);
    EXPECT_DEATH((void)p.route(vp::HostId{0}, vp::HostId{1}), "disconnected");
}

TEST(PlatformDeath, DuplicateHostNameAsserts)
{
    vp::Platform p("g");
    auto s = p.addSite("s");
    p.addHost("a", 1.0, s);
    EXPECT_DEATH(p.addHost("a", 1.0, s), "duplicate");
}

// --- canned platforms ---------------------------------------------------------

TEST(TwoClusterPlatform, Shape)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    EXPECT_EQ(p.hostCount(), vp::kTwoClusterHosts);
    EXPECT_NE(p.findGroup("adonis"), vp::kNoGroup);
    EXPECT_NE(p.findGroup("griffon"), vp::kNoGroup);
    EXPECT_EQ(p.hostsUnder(p.findGroup("adonis")).size(), 11u);
    EXPECT_EQ(p.hostsUnder(p.findGroup("griffon")).size(), 11u);
}

TEST(TwoClusterPlatform, CrossTrafficUsesBackbone)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    auto a = p.findHost("adonis-1");
    auto g = p.findHost("griffon-1");
    ASSERT_NE(a, vp::kNoHost);
    ASSERT_NE(g, vp::kNoHost);

    const vp::Route &cross = p.route(a, g);
    bool uses_backbone = false;
    for (auto l : cross.links)
        if (p.link(l).name == "backbone")
            uses_backbone = true;
    EXPECT_TRUE(uses_backbone);

    const vp::Route &local = p.route(a, p.findHost("adonis-2"));
    for (auto l : local.links)
        EXPECT_NE(p.link(l).name, "backbone");
    EXPECT_EQ(local.links.size(), 2u);  // two host links via the switch
}

TEST(TwoClusterPlatform, BackboneIsSharedAndScarce)
{
    // Any single cross flow bottlenecks on its 1 Gbit/s host links, but
    // the backbone (1.5 Gbit/s) is far below the 11 Gbit/s aggregate a
    // cluster can inject: multiple cross flows saturate it (Fig. 6).
    vp::Platform p = vp::makeTwoClusterPlatform();
    auto a = p.findHost("adonis-1");
    auto g = p.findHost("griffon-1");
    double backbone_bw = 0.0;
    double min_bw = 1e18;
    for (auto l : p.route(a, g).links) {
        min_bw = std::min(min_bw, p.link(l).bandwidthMbps);
        if (p.link(l).name == "backbone")
            backbone_bw = p.link(l).bandwidthMbps;
    }
    EXPECT_DOUBLE_EQ(min_bw, 1000.0);
    EXPECT_GT(backbone_bw, 0.0);
    EXPECT_LT(backbone_bw, 11.0 * 1000.0);
}

TEST(Grid5000Platform, ExactHostCount)
{
    vp::Platform p = vp::makeGrid5000();
    EXPECT_EQ(p.hostCount(), vp::kGrid5000Hosts);
    EXPECT_EQ(p.hostCount(), 2170u);  // the paper's number
}

TEST(Grid5000Platform, TwelveSites)
{
    vp::Platform p = vp::makeGrid5000();
    std::size_t sites = 0;
    for (vp::GroupId g{0}; g.index() < p.groupCount(); ++g)
        if (p.group(g).kind == vp::GroupKind::Site)
            ++sites;
    EXPECT_EQ(sites, 12u);
}

TEST(Grid5000Platform, AllPairsRoutable)
{
    vp::Platform p = vp::makeGrid5000();
    // Spot-check routes across the backbone ring.
    auto a = p.findHost("adonis-1");
    auto b = p.findHost("pastel-140");
    auto c = p.findHost("gdx-200");
    ASSERT_NE(a, vp::kNoHost);
    ASSERT_NE(b, vp::kNoHost);
    ASSERT_NE(c, vp::kNoHost);
    EXPECT_FALSE(p.route(a, b).links.empty());
    EXPECT_FALSE(p.route(b, c).links.empty());
    EXPECT_GT(p.route(a, b).latencyS, 0.0);
}

TEST(Grid5000Platform, HeterogeneousPower)
{
    vp::Platform p = vp::makeGrid5000();
    double lo = 1e18, hi = 0.0;
    for (vp::HostId h{0}; h.index() < p.hostCount(); ++h) {
        lo = std::min(lo, p.host(h).powerMflops);
        hi = std::max(hi, p.host(h).powerMflops);
    }
    EXPECT_LT(lo, 4000.0);
    EXPECT_GT(hi, 10000.0);
}

TEST(SyntheticGrid, Dimensions)
{
    viva::support::Rng rng(7);
    vp::Platform p = vp::makeSyntheticGrid(3, 2, 5, rng);
    EXPECT_EQ(p.hostCount(), 30u);
    // 3 sites + 6 clusters + grid = 10 groups.
    EXPECT_EQ(p.groupCount(), 10u);
    EXPECT_FALSE(p.route(vp::HostId{0}, vp::HostId{29}).links.empty());
}

// --- trace mirror ---------------------------------------------------------------

TEST(TraceMirror, StructureMatches)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::TraceMirror m = vp::mirrorPlatform(p, t);

    EXPECT_EQ(m.hostContainer.size(), p.hostCount());
    EXPECT_EQ(m.linkContainer.size(), p.linkCount());
    EXPECT_EQ(m.routerContainer.size(), p.routerCount());
    // 1 root + groups + hosts + routers + links.
    EXPECT_EQ(t.containerCount(), 1 + p.groupCount() + p.hostCount() +
                                      p.routerCount() + p.linkCount());

    // Hierarchy mirrored: adonis-3 sits under hpc/testbed/adonis.
    auto host = t.findByPath("hpc/testbed/adonis/adonis-3");
    ASSERT_NE(host, vt::kNoContainer);
    EXPECT_EQ(t.container(host).kind, vt::ContainerKind::Host);
}

TEST(TraceMirror, CapacitiesRecorded)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::TraceMirror m = vp::mirrorPlatform(p, t);

    auto h = p.findHost("adonis-1");
    const vt::Variable *power = t.findVariable(m.hostContainer[h.index()], m.power);
    ASSERT_NE(power, nullptr);
    EXPECT_DOUBLE_EQ(power->valueAt(0.0), 10000.0);

    auto backbone_id = vp::kNoLink;
    for (vp::LinkId l{0}; l.index() < p.linkCount(); ++l)
        if (p.link(l).name == "backbone")
            backbone_id = l;
    ASSERT_NE(backbone_id, vp::kNoLink);
    const vt::Variable *bw =
        t.findVariable(m.linkContainer[backbone_id.index()], m.bandwidth);
    ASSERT_NE(bw, nullptr);
    EXPECT_DOUBLE_EQ(bw->valueAt(0.0),
                     p.link(backbone_id).bandwidthMbps);
}

TEST(TraceMirror, RelationsFollowTopology)
{
    vp::Platform p = makeDumbbell();
    vt::Trace t;
    vp::TraceMirror m = vp::mirrorPlatform(p, t);

    // h0 relates to l0 only; l2 relates to both routers.
    auto n0 = t.neighbors(m.hostContainer[0]);
    ASSERT_EQ(n0.size(), 1u);
    EXPECT_EQ(n0[0], m.linkContainer[0]);

    auto nl2 = t.neighbors(m.linkContainer[2]);
    EXPECT_EQ(nl2.size(), 2u);
}

TEST(TraceMirrorDeath, RequiresEmptyTrace)
{
    vp::Platform p = makeDumbbell();
    vt::Trace t;
    t.addContainer("junk", vt::ContainerKind::Host, t.root());
    EXPECT_DEATH(vp::mirrorPlatform(p, t), "empty trace");
}
