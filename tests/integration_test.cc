/**
 * @file
 * End-to-end integration tests: scaled-down versions of both paper case
 * studies run through the full pipeline (platform -> simulation ->
 * trace -> aggregation -> session -> rendering), checking the paper's
 * qualitative claims hold.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "support/random.hh"
#include "viz/svg.hh"
#include "workload/masterworker.hh"
#include "workload/nasdt.hh"

namespace va = viva::agg;
namespace vap = viva::app;
namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vt = viva::trace;
namespace vw = viva::workload;

namespace
{

/** Mean utilization of a link over a slice, as a fraction of capacity. */
double
linkUtilization(const vt::Trace &trace, const std::string &link_name,
                const va::TimeSlice &slice)
{
    auto link = trace.findByName(link_name);
    if (link == vt::kNoContainer)
        return -1.0;
    auto used = trace.findMetric("bandwidth_used");
    auto cap = trace.findMetric("bandwidth");
    const vt::Variable *u = trace.findVariable(link, used);
    const vt::Variable *c = trace.findVariable(link, cap);
    if (!u || !c)
        return -1.0;
    return u->average(slice) / c->valueAt(slice.begin);
}

} // namespace

// --- case study 1: NAS-DT on two clusters (Figs. 6 and 7) --------------------

class NasDtCase : public ::testing::Test
{
  protected:
    static vw::DtParams
    params()
    {
        vw::DtParams p;
        p.cycles = 8;
        return p;
    }

    struct Outcome
    {
        vt::Trace trace;
        double makespan;
    };

    static Outcome
    runWith(bool locality)
    {
        vp::Platform plat = vp::makeTwoClusterPlatform();
        vs::SimulationRun run(plat);
        vw::DtParams p = params();
        vw::Deployment dep = locality
                                 ? vw::localityDeployment(plat, p)
                                 : vw::sequentialDeployment(plat, p);
        vw::DtResult result = vw::runNasDtWhiteHole(run, p, dep);
        return {std::move(run.trace), result.makespanS};
    }
};

TEST_F(NasDtCase, SequentialSaturatesTheInterconnect)
{
    Outcome seq = runWith(false);
    va::TimeSlice whole = seq.trace.span();

    // Fig. 6 claim: the backbone is almost saturated over the whole run.
    double backbone = linkUtilization(seq.trace, "backbone", whole);
    ASSERT_GE(backbone, 0.0);
    EXPECT_GT(backbone, 0.7);

    // ... and in each of the beginning / middle / end sub-slices.
    for (std::size_t i = 0; i < 3; ++i) {
        double u = linkUtilization(seq.trace, "backbone",
                                   va::sliceAt(whole, va::SliceIndex::fromIndex(i), 3));
        EXPECT_GT(u, 0.5) << "sub-slice " << i;
    }
}

TEST_F(NasDtCase, LocalityRelievesTheInterconnect)
{
    Outcome seq = runWith(false);
    Outcome loc = runWith(true);

    double u_seq =
        linkUtilization(seq.trace, "backbone", seq.trace.span());
    double u_loc =
        linkUtilization(loc.trace, "backbone", loc.trace.span());
    // Fig. 7 claim: the interconnect load drops substantially.
    EXPECT_LT(u_loc, u_seq * 0.6);

    // The paper reports a ~20% makespan improvement.
    double gain = (seq.makespan - loc.makespan) / seq.makespan;
    EXPECT_GT(gain, 0.10) << "seq " << seq.makespan << " loc "
                          << loc.makespan;
}

TEST_F(NasDtCase, ContentionMovesIntoTheClusters)
{
    Outcome loc = runWith(true);
    va::TimeSlice whole = loc.trace.span();

    // With locality, some intra-cluster host link carries more traffic
    // than the backbone (Fig. 7: "the network contention is now placed
    // on the small network links on each of the clusters").
    double backbone = linkUtilization(loc.trace, "backbone", whole);
    double adonis1 = linkUtilization(loc.trace, "adonis-1-link", whole);
    double best_host_link = adonis1;
    for (int i = 2; i <= 11; ++i) {
        best_host_link = std::max(
            best_host_link,
            linkUtilization(loc.trace,
                            "adonis-" + std::to_string(i) + "-link",
                            whole));
    }
    EXPECT_GT(best_host_link, backbone);
}

TEST_F(NasDtCase, SessionViewsShowTheSaturation)
{
    Outcome seq = runWith(false);
    vap::Session session(std::move(seq.trace));

    // The analyst's workflow: whole-run slice, cluster-level view.
    session.aggregateToDepth(3);
    session.stabilizeLayout(300).value();
    va::View v = session.view();
    EXPECT_GT(v.nodes.size(), 2u);

    // Render all four Fig. 6 views without error.
    std::ostringstream svg;
    viva::viz::writeSvg(session.scene(), svg);
    for (std::size_t i = 0; i < 3; ++i) {
        session.setSliceOf(va::SliceIndex::fromIndex(i), 3);
        viva::viz::writeSvg(session.scene(), svg);
    }
    EXPECT_GT(svg.str().size(), 1000u);
}

// --- case study 2: competing master-workers on a grid (Figs. 8 and 9) --------

class MasterWorkerCase : public ::testing::Test
{
  protected:
    /** A small synthetic grid: 4 sites x 2 clusters x 4 hosts. */
    static vp::Platform
    makeGrid()
    {
        viva::support::Rng rng(99);
        return vp::makeSyntheticGrid(4, 2, 4, rng);
    }

    struct Outcome
    {
        vt::Trace trace;
        std::vector<std::size_t> tasks_app1;
        std::vector<std::size_t> tasks_app2;
        std::vector<vp::HostId> workers;
    };

    static Outcome
    run(vw::MwPolicy policy)
    {
        vp::Platform plat = makeGrid();
        vs::SimulationRun sim(plat, {"cpubound", "netbound"});

        vw::MwParams p1;
        p1.name = "cpubound";
        p1.master = vp::HostId{0};  // first host of site0
        p1.workers = vw::allHostsExcept(plat, {vp::HostId{0}, vp::HostId{16}});
        p1.taskInputMbits = 2.0;
        p1.taskMflop = 30000.0;
        p1.totalTasks = 150;
        p1.policy = policy;

        vw::MwParams p2 = p1;
        p2.name = "netbound";
        p2.master = vp::HostId{16};  // a host in another site
        p2.taskInputMbits = 40.0;  // much higher comm/comp ratio:
        p2.taskMflop = 2000.0;     // the master is the bottleneck
        p2.totalTasks = 150;

        vw::MasterWorkerApp app1(sim, p1, 1);
        vw::MasterWorkerApp app2(sim, p2, 2);
        app1.start();
        app2.start();
        sim.engine.run();

        EXPECT_TRUE(app1.finished());
        EXPECT_TRUE(app2.finished());
        return {std::move(sim.trace), app1.result().tasksPerWorker,
                app2.result().tasksPerWorker, p1.workers};
    }
};

TEST_F(MasterWorkerCase, BothAppsTracedPerApplication)
{
    Outcome o = run(vw::MwPolicy::BandwidthCentric);
    EXPECT_NE(o.trace.findMetric("power_used:cpubound"),
              vt::kNoMetric);
    EXPECT_NE(o.trace.findMetric("bandwidth_used:netbound"),
              vt::kNoMetric);
}

TEST_F(MasterWorkerCase, CpuBoundAppWinsResourceShare)
{
    Outcome o = run(vw::MwPolicy::BandwidthCentric);
    va::TimeSlice whole = o.trace.span();

    // Fig. 8 claim (1): the CPU-bound app achieves better overall
    // resource usage. Compare total compute integrals grid-wide.
    va::Aggregator agg(o.trace);
    va::HierarchyCut cut(o.trace);
    cut.aggregateToDepth(1);  // the whole grid as one node
    auto nodes = cut.visibleNodes();
    ASSERT_EQ(nodes.size(), 1u);

    auto m1 = o.trace.findMetric("power_used:cpubound");
    auto m2 = o.trace.findMetric("power_used:netbound");
    double use1 = agg.value(nodes[0], m1, whole);
    double use2 = agg.value(nodes[0], m2, whole);
    EXPECT_GT(use1, use2);
}

TEST_F(MasterWorkerCase, NetworkBoundAppShowsLocality)
{
    Outcome o = run(vw::MwPolicy::BandwidthCentric);

    // Fig. 8 claim (2): the comm-bound app concentrates its work on
    // high-bandwidth (nearby) workers: its per-worker task counts are
    // more skewed than uniform.
    std::size_t total = 0, busiest = 0;
    for (auto n : o.tasks_app2) {
        total += n;
        busiest = std::max(busiest, n);
    }
    double uniform_share = double(total) / double(o.tasks_app2.size());
    EXPECT_GT(double(busiest), 2.0 * uniform_share);
}

TEST_F(MasterWorkerCase, FifoDiffusesMoreUniformly)
{
    Outcome bc = run(vw::MwPolicy::BandwidthCentric);
    Outcome fifo = run(vw::MwPolicy::Fifo);

    auto skew = [](const std::vector<std::size_t> &tasks) {
        viva::support::Samples s;
        for (auto n : tasks)
            s.add(double(n));
        return s.count() && s.mean() > 0 ? s.stddev() / s.mean() : 0.0;
    };
    // Fig. 9 claim: FIFO exhibits a more uniform resource usage than
    // the bandwidth-centric strategy (for the comm-bound app).
    EXPECT_LE(skew(fifo.tasks_app2), skew(bc.tasks_app2));
}

TEST_F(MasterWorkerCase, MultiScaleViewsRevealWhatHostLevelHides)
{
    Outcome o = run(vw::MwPolicy::BandwidthCentric);
    vap::Session session(std::move(o.trace));

    auto m2 = session.trace().findMetric("power_used:netbound");
    ASSERT_NE(m2, vt::kNoMetric);

    // Host-level view: thousands of tiny values (hard to read); the
    // site-level view exposes per-site imbalance directly.
    session.aggregateToDepth(1);
    std::size_t grid_nodes = session.cut().visibleCount();
    session.aggregateToDepth(2);
    std::size_t site_nodes = session.cut().visibleCount();
    session.resetAggregation();
    std::size_t host_nodes = session.cut().visibleCount();
    EXPECT_LT(grid_nodes, site_nodes);
    EXPECT_LT(site_nodes, host_nodes);

    // Per-site netbound usage: some site clearly above another.
    session.aggregateToDepth(2);
    va::Aggregator agg(session.trace());
    va::TimeSlice whole = session.span();
    std::vector<double> site_use;
    for (auto id : session.cut().visibleNodes()) {
        if (session.trace().container(id).kind ==
            vt::ContainerKind::Site)
            site_use.push_back(agg.value(id, m2, whole));
    }
    ASSERT_GE(site_use.size(), 3u);
    double lo = site_use[0], hi = site_use[0];
    for (double v : site_use) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi, 1.5 * (lo + 1e-9));  // visible imbalance at site scale
}

TEST_F(MasterWorkerCase, AnimationShowsWorkloadDiffusion)
{
    Outcome o = run(vw::MwPolicy::BandwidthCentric);
    vt::Trace trace = std::move(o.trace);
    auto m1 = trace.findMetric("power_used:cpubound");

    // Fig. 9: early slices concentrate work near the master's site;
    // over time it diffuses. Check the number of active sites grows
    // between the first and last quarter of the run.
    va::Aggregator agg(trace);
    va::HierarchyCut cut(trace);
    cut.aggregateToDepth(2);
    va::TimeSlice span = trace.span();

    auto active_sites = [&](const va::TimeSlice &slice) {
        std::size_t n = 0;
        for (auto id : cut.visibleNodes()) {
            if (trace.container(id).kind != vt::ContainerKind::Site)
                continue;
            if (agg.value(id, m1, slice) > 1.0)
                ++n;
        }
        return n;
    };
    std::size_t early = active_sites(va::sliceAt(span, va::SliceIndex{0}, 8));
    std::size_t late = active_sites(va::sliceAt(span, va::SliceIndex{4}, 8));
    EXPECT_GE(late, early);
    EXPECT_GE(late, 3u);  // eventually most sites work
}
