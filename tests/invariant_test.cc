/**
 * @file
 * Tests for the deep invariant audits: every auditInvariants() must be
 * clean on well-formed structures and must fire when the structure is
 * deliberately corrupted through the debug fault-injection hooks.
 */

#include <gtest/gtest.h>

#include <limits>

#include "agg/aggregate.hh"
#include "agg/hierarchy_cut.hh"
#include "app/session.hh"
#include "layout/force.hh"
#include "layout/graph.hh"
#include "layout/quadtree.hh"
#include "platform/platform.hh"
#include "support/invariant.hh"
#include "support/random.hh"
#include "trace/builder.hh"
#include "trace/trace.hh"

namespace va = viva::agg;
namespace vl = viva::layout;
namespace vp = viva::platform;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

/** A two-level trace with variables, relations and states. */
vt::Trace
makeTrace()
{
    vt::TraceBuilder b;
    vt::MetricId power = b.powerMetric();
    vt::MetricId used = b.powerUsedMetric();

    b.beginGroup("site", vt::ContainerKind::Site);
    b.beginGroup("cluster", vt::ContainerKind::Cluster);
    vt::ContainerId h1 = b.host("h1");
    vt::ContainerId h2 = b.host("h2");
    b.endGroup();
    vt::ContainerId h3 = b.host("h3");
    b.endGroup();

    vt::Trace &t = b.trace();
    t.addRelation(h1, h2);
    t.addRelation(h2, h3);
    t.variable(h1, power).set(0.0, 10.0);
    t.variable(h2, power).set(0.0, 30.0);
    t.variable(h3, power).set(0.0, 5.0);
    t.variable(h1, used).set(0.0, 4.0);
    t.variable(h1, power).set(10.0, 10.0);
    t.addState(h1, 0.0, 5.0, "compute");
    return b.take();
}

/** A quadtree over a deterministic point cloud. */
vl::QuadTree
makeTree(std::size_t points)
{
    vl::QuadTree tree({-100.0, -100.0}, {100.0, 100.0});
    vs::Rng rng(42);
    for (std::size_t i = 0; i < points; ++i) {
        double x = rng.uniform(-90.0, 90.0);
        double y = rng.uniform(-90.0, 90.0);
        tree.insert({x, y}, 1.0 + double(i % 3));
    }
    return tree;
}

} // namespace

// --- QuadTree -----------------------------------------------------------------

TEST(QuadTreeAudit, CleanAfterManyInserts)
{
    vl::QuadTree tree = makeTree(500);
    EXPECT_TRUE(tree.auditInvariants().empty());
}

TEST(QuadTreeAudit, CleanWithCoincidentPoints)
{
    vl::QuadTree tree({0.0, 0.0}, {10.0, 10.0});
    for (int i = 0; i < 8; ++i)
        tree.insert({5.0, 5.0}, 2.0);
    EXPECT_TRUE(tree.auditInvariants().empty());
}

TEST(QuadTreeAudit, DetectsCorruptedCharge)
{
    vl::QuadTree tree = makeTree(64);
    ASSERT_GT(tree.cellCount(), 1u);
    tree.debugScaleCellCharge(0, 2.0);
    vs::AuditLog log = tree.auditInvariants();
    ASSERT_FALSE(log.empty());
}

TEST(QuadTreeAudit, DetectsCorruptedLeafCharge)
{
    vl::QuadTree tree = makeTree(64);
    // Corrupting the deepest cell breaks both the leaf's own
    // charge/point consistency and its ancestors' sums.
    tree.debugScaleCellCharge(tree.cellCount() - 1, 3.0);
    EXPECT_FALSE(tree.auditInvariants().empty());
}

// --- LayoutGraph ---------------------------------------------------------------

TEST(GraphAudit, CleanThroughMutations)
{
    vl::LayoutGraph g;
    vl::NodeId a = g.addNode(1, {0.0, 0.0});
    vl::NodeId b = g.addNode(2, {10.0, 0.0});
    vl::NodeId c = g.addNode(3, {0.0, 10.0}, 2.5);
    g.addEdge(a, b);
    g.addEdge(b, c, 0.5);
    EXPECT_TRUE(g.auditInvariants().empty());
    g.removeNode(b);
    EXPECT_TRUE(g.auditInvariants().empty());
    g.clearEdges();
    EXPECT_TRUE(g.auditInvariants().empty());
}

TEST(GraphAudit, DetectsCounterDrift)
{
    vl::LayoutGraph g;
    g.addNode(1, {0.0, 0.0});
    g.debugCorruptLiveCount();
    vs::AuditLog log = g.auditInvariants();
    ASSERT_FALSE(log.empty());
    EXPECT_NE(log[0].find("counter"), std::string::npos);
}

TEST(GraphAudit, FinitePositionsDetectNan)
{
    vl::LayoutGraph g;
    g.addNode(1, {0.0, 0.0});
    g.addNode(2, {1.0, 1.0});
    EXPECT_TRUE(vl::auditFinitePositions(g).empty());
    g.mutableNodes()[1].position.x =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(vl::auditFinitePositions(g).empty());
}

TEST(GraphAudit, FinitePositionsDetectInfVelocity)
{
    vl::LayoutGraph g;
    g.addNode(7, {2.0, 3.0});
    g.mutableNodes()[0].velocity.y =
        std::numeric_limits<double>::infinity();
    EXPECT_FALSE(vl::auditFinitePositions(g).empty());
}

// --- HierarchyCut ---------------------------------------------------------------

TEST(CutAudit, CleanAcrossOperations)
{
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    EXPECT_TRUE(cut.auditInvariants().empty());

    cut.aggregate(trace.findByName("cluster"));
    EXPECT_TRUE(cut.auditInvariants().empty());

    cut.aggregateToDepth(1);
    EXPECT_TRUE(cut.auditInvariants().empty());

    cut.disaggregate(trace.findByName("site"));
    EXPECT_TRUE(cut.auditInvariants().empty());

    cut.focus({trace.findByName("h1")});
    EXPECT_TRUE(cut.auditInvariants().empty());

    cut.reset();
    EXPECT_TRUE(cut.auditInvariants().empty());
}

TEST(CutAudit, DetectsCollapsedLeaf)
{
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    cut.debugSetCollapsed(trace.findByName("h1"), true);
    vs::AuditLog log = cut.auditInvariants();
    ASSERT_FALSE(log.empty());
    EXPECT_NE(log[0].find("leaf"), std::string::npos);
}

TEST(CutAudit, NestedCollapsedFlagsAreLegal)
{
    // A collapsed node under a collapsed ancestor is tolerated by
    // design (representative() resolves to the topmost one); the cut
    // property must still hold.
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    cut.debugSetCollapsed(trace.findByName("site"), true);
    cut.debugSetCollapsed(trace.findByName("cluster"), true);
    EXPECT_TRUE(cut.auditInvariants().empty());
}

TEST(CutAudit, DetectsStaleFlagVector)
{
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    // The trace grows after the cut was built: the flag vector no
    // longer matches the containers.
    trace.addContainer("h4", vt::ContainerKind::Host,
                       trace.findByName("site"));
    vs::AuditLog log = cut.auditInvariants();
    ASSERT_FALSE(log.empty());
    EXPECT_NE(log[0].find("flag vector"), std::string::npos);
}

// --- Platform -------------------------------------------------------------------

TEST(PlatformAudit, CleanOnBuiltPlatform)
{
    vp::Platform p("grid");
    vp::GroupId site = p.addSite("lyon");
    vp::GroupId cluster = p.addCluster("sagittaire", site);
    vp::HostId h1 = p.addHost("sag-1", 1000.0, cluster);
    vp::HostId h2 = p.addHost("sag-2", 1000.0, cluster);
    vp::RouterId r = p.addRouter("sw0", cluster);
    vp::LinkId l1 = p.addLink("l1", 100.0, 1e-4, cluster);
    vp::LinkId l2 = p.addLink("l2", 100.0, 1e-4, cluster);
    p.connect(p.host(h1).vertex, p.router(r).vertex, l1);
    p.connect(p.router(r).vertex, p.host(h2).vertex, l2);
    EXPECT_TRUE(p.auditInvariants().empty());
    EXPECT_EQ(p.route(h1, h2).links.size(), 2u);
    EXPECT_TRUE(p.auditInvariants().empty());
}

TEST(PlatformAudit, DetectsOrphanedGroup)
{
    vp::Platform p("grid");
    vp::GroupId site = p.addSite("lyon");
    p.addCluster("sagittaire", site);
    p.debugOrphanGroup(site);
    vs::AuditLog log = p.auditInvariants();
    ASSERT_FALSE(log.empty());
    EXPECT_NE(log[0].find("parent"), std::string::npos);
}

// --- Trace ----------------------------------------------------------------------

TEST(TraceAudit, CleanOnBuiltTrace)
{
    vt::Trace trace = makeTrace();
    EXPECT_TRUE(trace.auditInvariants().empty());
}

TEST(TraceAudit, DetectsCorruptedParentLink)
{
    vt::Trace trace = makeTrace();
    vt::ContainerId h1 = trace.findByName("h1");
    trace.debugMutableContainer(h1).parent = h1;  // cycle on itself
    EXPECT_FALSE(trace.auditInvariants().empty());
}

TEST(TraceAudit, DetectsCorruptedDepth)
{
    vt::Trace trace = makeTrace();
    trace.debugMutableContainer(trace.findByName("h2")).depth = 9;
    vs::AuditLog log = trace.auditInvariants();
    ASSERT_FALSE(log.empty());
    EXPECT_NE(log[0].find("depth"), std::string::npos);
}

// --- Aggregated views -----------------------------------------------------------

TEST(ViewAudit, CleanSerialAndParallel)
{
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    cut.aggregate(trace.findByName("cluster"));
    va::TimeSlice slice{0.0, 10.0};
    std::vector<vt::MetricId> metrics{trace.findMetric("power"),
                                      trace.findMetric("power_used")};
    for (std::size_t threads : {1u, 4u}) {
        va::View view = va::buildView(trace, cut, slice, metrics,
                                      va::SpatialOp::Sum, false, threads);
        EXPECT_TRUE(va::auditView(trace, cut, view).empty())
            << "threads=" << threads;
    }
    // The with-stats build path must conserve Equation 1 as well.
    va::View view = va::buildView(trace, cut, slice, metrics,
                                  va::SpatialOp::Sum, true, 2);
    EXPECT_TRUE(va::auditView(trace, cut, view).empty());
}

TEST(ViewAudit, DetectsValueDrift)
{
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    cut.aggregate(trace.findByName("cluster"));
    std::vector<vt::MetricId> metrics{trace.findMetric("power")};
    va::View view = va::buildView(trace, cut, {0.0, 10.0}, metrics);
    ASSERT_FALSE(view.nodes.empty());
    view.nodes[0].values[0] += 1.0;
    vs::AuditLog log = va::auditView(trace, cut, view);
    ASSERT_FALSE(log.empty());
    EXPECT_NE(log[0].find("conservation"), std::string::npos);
}

TEST(ViewAudit, DetectsStaleNodeSet)
{
    vt::Trace trace = makeTrace();
    va::HierarchyCut cut(trace);
    std::vector<vt::MetricId> metrics{trace.findMetric("power")};
    va::View view = va::buildView(trace, cut, {0.0, 10.0}, metrics);
    // The cut moves on; the view no longer matches it.
    cut.aggregate(trace.findByName("site"));
    EXPECT_FALSE(va::auditView(trace, cut, view).empty());
}

// --- Session --------------------------------------------------------------------

TEST(SessionAudit, CleanThroughAnalysisSequence)
{
    viva::app::Session session(makeTrace());
    EXPECT_TRUE(session.auditInvariants().empty());

    session.aggregate("site/cluster");
    EXPECT_TRUE(session.auditInvariants().empty());

    session.setSliceOf(va::SliceIndex{0}, 2);
    session.stepLayout(5).value();
    EXPECT_TRUE(session.auditInvariants().empty());

    session.focus("h1");
    session.stabilizeLayout(50).value();
    EXPECT_TRUE(session.auditInvariants().empty());

    session.resetAggregation();
    EXPECT_TRUE(session.auditInvariants().empty());
}

TEST(SessionAudit, DetectsLayoutCorruption)
{
    viva::app::Session session(makeTrace());
    auto &nodes = session.mutableLayoutGraph().mutableNodes();
    ASSERT_FALSE(nodes.empty());
    nodes[0].position.x = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(session.auditInvariants().empty());
}
