/**
 * @file
 * Golden-file test for the `stats --json` export schema. A fixed
 * workload under a frozen FakeClock must reproduce the checked-in
 * fixture BYTE FOR BYTE -- any schema drift (key order, spacing, new
 * or renamed metrics on these code paths) shows up as a diff here and
 * must be a deliberate, reviewed change to the fixture.
 *
 * This test lives in its own binary on purpose: the global registry is
 * append-only, so tests sharing a process would leak their metric
 * names into the export. Regenerate the fixture with:
 *
 *   VIVA_UPDATE_GOLDEN=1 ./obs_golden_test
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "app/commands.hh"
#include "app/session.hh"
#include "support/clock.hh"
#include "support/invariant.hh"
#include "support/obs.hh"
#include "trace/builder.hh"

namespace obs = viva::support::obs;
namespace vap = viva::app;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

/** The pinned workload: 2 sites x 4 hosts, one metric pair, 5 steps. */
vt::Trace
goldenTrace()
{
    vt::TraceBuilder b;
    for (int s = 0; s < 2; ++s) {
        b.beginGroup("site" + std::to_string(s),
                     vt::ContainerKind::Site);
        for (int h = 0; h < 4; ++h) {
            vt::ContainerId host =
                b.host("s" + std::to_string(s) + "h" + std::to_string(h));
            for (int t = 0; t <= 4; ++t) {
                b.set(host, "power", double(t), 100.0);
                b.set(host, "power_used", double(t),
                      double((s + h + t) % 3) * 25.0);
            }
        }
        b.endGroup();
    }
    return b.take();
}

/** Run the pinned workload and export `stats --json`. */
std::string
goldenStatsJson()
{
    vs::FakeClock frozen(0);
    vs::ClockOverride clock_guard(frozen);
    obs::Registry::global().reset();

    vap::Session sess(goldenTrace());
    sess.setThreads(2);
    sess.aggregateToDepth(1);
    (void)sess.view();
    sess.resetAggregation();
    (void)sess.view(true);
    sess.stepLayout(5).value();

    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    EXPECT_TRUE(interp.execute("stats --json", out));
    return out.str();
}

} // namespace

TEST(ObsGolden, StatsJsonMatchesTheCheckedInFixture)
{
    // The fixture pins the shipping configuration. VIVA_VALIDATE runs
    // the full invariant audit after every mutating call, and the
    // audit's cut/view recomputations flow through the same counted
    // paths -- deliberately more work, legitimately different numbers.
    if constexpr (vs::validateEnabled())
        GTEST_SKIP() << "fixture pins the non-VALIDATE counter totals";

    // First run registers every metric name; the second, measured run
    // starts from zeroed values with the full name set in place --
    // exactly the state a long-lived interactive session is in.
    (void)goldenStatsJson();
    const std::string actual = goldenStatsJson();

    const std::string fixture_path = VIVA_OBS_GOLDEN;
    if (std::getenv("VIVA_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(fixture_path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << fixture_path;
        out << actual;
        GTEST_SKIP() << "fixture regenerated: " << fixture_path;
    }

    std::ifstream in(fixture_path, std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << fixture_path
                    << " -- regenerate with VIVA_UPDATE_GOLDEN=1";
    std::ostringstream expected;
    expected << in.rdbuf();

    EXPECT_EQ(actual, expected.str())
        << "stats --json drifted from the golden fixture; if the "
           "change is intentional, regenerate with "
           "VIVA_UPDATE_GOLDEN=1 ./obs_golden_test";
}

TEST(ObsGolden, ExportIsStableAcrossRepeatedRuns)
{
    (void)goldenStatsJson();
    EXPECT_EQ(goldenStatsJson(), goldenStatsJson());
}
