/**
 * @file
 * Tests for the viva-lint engine: every rule of tools/lint_rules.hh is
 * exercised with a positive fixture (the rule fires), a suppressed
 * fixture (the allow comment silences it) and a negative fixture (clean
 * or out-of-scope code stays clean). Fixtures live under
 * tests/lint_fixtures/ and are linted under virtual repo paths so rule
 * scoping is under test too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli_common.hh"
#include "tools/lint.hh"

namespace vl = viva::lint;

namespace
{

/** Load one fixture file from the source tree. */
std::string
fixture(const std::string &name)
{
    std::string path = std::string(VIVA_LINT_FIXTURES) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Lint one fixture in isolation under a virtual repo path. */
std::vector<vl::Finding>
lintAs(const std::string &virtual_path, const std::string &fixture_name)
{
    return vl::runLint({{virtual_path, fixture(fixture_name)}});
}

/** Number of findings carrying a rule id. */
std::size_t
countRule(const std::vector<vl::Finding> &findings,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const vl::Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

} // namespace

// --- unordered-iter -------------------------------------------------------------

TEST(LintUnorderedIter, FiresOnRangeFor)
{
    auto findings = lintAs("src/agg/fixture.cc", "unordered_iter_bad.cc");
    EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(findings[0].line, 8u);
}

TEST(LintUnorderedIter, FiresOnBeginThroughAlias)
{
    auto findings =
        lintAs("src/agg/fixture.cc", "unordered_iter_begin_bad.cc");
    EXPECT_EQ(countRule(findings, "unordered-iter"), 1u);
}

TEST(LintUnorderedIter, SuppressedByTrailingAllow)
{
    auto findings =
        lintAs("src/agg/fixture.cc", "unordered_iter_suppressed.cc");
    EXPECT_EQ(countRule(findings, "unordered-iter"), 0u);
}

TEST(LintUnorderedIter, SuppressedByAllowLineAbove)
{
    auto findings =
        lintAs("src/agg/fixture.cc", "suppress_line_above.cc");
    EXPECT_EQ(countRule(findings, "unordered-iter"), 0u);
}

TEST(LintUnorderedIter, CleanOnOrderedContainers)
{
    auto findings = lintAs("src/agg/fixture.cc", "unordered_iter_ok.cc");
    EXPECT_TRUE(findings.empty());
}

// --- raw-random -----------------------------------------------------------------

TEST(LintRawRandom, FiresOnRandAndRandomDevice)
{
    auto findings = lintAs("src/trace/fixture.cc", "raw_random_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-random"), 2u);
}

TEST(LintRawRandom, SuppressedFileWide)
{
    auto findings =
        lintAs("src/trace/fixture.cc", "raw_random_suppressed.cc");
    EXPECT_EQ(countRule(findings, "raw-random"), 0u);
}

TEST(LintRawRandom, ExemptInSeededRngHelper)
{
    // The designated seeded-RNG helper is excluded from the rule.
    auto findings =
        lintAs("src/support/random.hh", "raw_random_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-random"), 0u);
}

// --- raw-new-delete -------------------------------------------------------------

TEST(LintNewDelete, FiresOnRawNewAndDelete)
{
    auto findings = lintAs("src/viz/fixture.cc", "new_delete_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-new-delete"), 2u);
}

TEST(LintNewDelete, CleanOnDeletedMembersAndSmartPointers)
{
    auto findings = lintAs("src/viz/fixture.cc", "new_delete_ok.cc");
    EXPECT_EQ(countRule(findings, "raw-new-delete"), 0u);
}

// --- float-type -----------------------------------------------------------------

TEST(LintFloatType, FiresInLayoutScope)
{
    auto findings = lintAs("src/layout/fixture.cc", "float_bad.cc");
    EXPECT_EQ(countRule(findings, "float-type"), 1u);
}

TEST(LintFloatType, OutOfScopeInViz)
{
    // The rule only covers layout/aggregation math.
    auto findings = lintAs("src/viz/fixture.cc", "float_bad.cc");
    EXPECT_EQ(countRule(findings, "float-type"), 0u);
}

// --- wall-clock -----------------------------------------------------------------

TEST(LintWallClock, FiresOnSystemClockAndTime)
{
    // Three hits: the <ctime> include itself, system_clock::now() and
    // time(nullptr).
    auto findings = lintAs("src/app/fixture.cc", "wall_clock_bad.cc");
    EXPECT_EQ(countRule(findings, "wall-clock"), 3u);
}

TEST(LintWallClock, OutOfScopeInBench)
{
    // Wall-clock reads are fine outside src/ (benchmarks time things).
    auto findings = lintAs("bench/fixture.cc", "wall_clock_bad.cc");
    EXPECT_EQ(countRule(findings, "wall-clock"), 0u);
}

TEST(LintWallClock, CleanOnSteadyClock)
{
    auto findings = lintAs("src/app/fixture.cc", "wall_clock_ok.cc");
    EXPECT_EQ(countRule(findings, "wall-clock"), 0u);
}

// --- raw-chrono -----------------------------------------------------------------

TEST(LintRawChrono, FiresOnDirectClockReads)
{
    // steady_clock::now() and high_resolution_clock::now(): monotonic,
    // so wall-clock stays silent, but both bypass the injectable
    // support::clock() and break FakeClock-driven tests.
    auto findings = lintAs("src/layout/fixture.cc", "raw_chrono_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-chrono"), 2u);
}

TEST(LintRawChrono, FiresInBenchToo)
{
    // Unlike wall-clock, benches are in scope: their timings must also
    // run through support::clock() so FakeClock exports stay exact.
    auto findings = lintAs("bench/fixture.cc", "raw_chrono_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-chrono"), 2u);
}

TEST(LintRawChrono, ExemptInTheClockShim)
{
    // support/clock.cc is the one sanctioned chrono touchpoint.
    auto findings =
        lintAs("src/support/clock.cc", "raw_chrono_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-chrono"), 0u);
}

TEST(LintRawChrono, OutOfScopeInTests)
{
    auto findings = lintAs("tests/fixture.cc", "raw_chrono_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-chrono"), 0u);
}

TEST(LintRawChrono, SuppressedByAllow)
{
    auto findings =
        lintAs("src/layout/fixture.cc", "raw_chrono_suppressed.cc");
    EXPECT_EQ(countRule(findings, "raw-chrono"), 0u);
}

TEST(LintRawChrono, CleanOnTheInjectedClock)
{
    auto findings = lintAs("src/layout/fixture.cc", "raw_chrono_ok.cc");
    EXPECT_EQ(countRule(findings, "raw-chrono"), 0u);
}

// --- pragma-once ----------------------------------------------------------------

TEST(LintPragmaOnce, FiresOnGuardedHeader)
{
    auto findings = lintAs("src/viz/fixture.hh", "pragma_once_bad.hh");
    EXPECT_EQ(countRule(findings, "pragma-once"), 1u);
}

TEST(LintPragmaOnce, CleanWithPragma)
{
    auto findings = lintAs("src/viz/fixture.hh", "pragma_once_ok.hh");
    EXPECT_TRUE(findings.empty());
}

TEST(LintPragmaOnce, HeadersOnlyRuleIgnoresSources)
{
    auto findings = lintAs("src/viz/fixture.cc", "pragma_once_bad.hh");
    EXPECT_EQ(countRule(findings, "pragma-once"), 0u);
}

// --- include-hygiene ------------------------------------------------------------

TEST(LintIncludeHygiene, FiresOnParentIncludeAndUsingNamespace)
{
    auto findings =
        lintAs("src/viz/fixture.hh", "include_hygiene_bad.hh");
    EXPECT_EQ(countRule(findings, "include-hygiene"), 2u);
}

// --- narrowing ------------------------------------------------------------------

TEST(LintNarrowing, FiresOnSizeInitAndNegativeUnsigned)
{
    auto findings = lintAs("src/agg/fixture.cc", "narrowing_bad.cc");
    // int = .size(), uint32_t = .length(), uint32_t = -1.
    EXPECT_EQ(countRule(findings, "narrowing"), 3u);
}

TEST(LintNarrowing, CleanOnSizeTAndExplicitCasts)
{
    auto findings = lintAs("src/agg/fixture.cc", "narrowing_ok.cc");
    EXPECT_EQ(countRule(findings, "narrowing"), 0u);
}

TEST(LintNarrowing, SuppressedByTrailingAllow)
{
    auto findings =
        lintAs("src/agg/fixture.cc", "narrowing_suppressed.cc");
    EXPECT_EQ(countRule(findings, "narrowing"), 0u);
}

TEST(LintNarrowing, OutOfScopeOutsideSrc)
{
    // Tests and benches size-match against ints freely.
    auto findings = lintAs("tests/fixture.cc", "narrowing_bad.cc");
    EXPECT_EQ(countRule(findings, "narrowing"), 0u);
}

// --- assert-side-effect ---------------------------------------------------------

TEST(LintAssertSideEffect, FiresOnMutationInAsserts)
{
    auto findings =
        lintAs("src/agg/fixture.cc", "assert_side_effect_bad.cc");
    // ++i, v.insert(...), i = 3.
    EXPECT_EQ(countRule(findings, "assert-side-effect"), 3u);
}

TEST(LintAssertSideEffect, CleanOnPureExpressions)
{
    auto findings =
        lintAs("src/agg/fixture.cc", "assert_side_effect_ok.cc");
    EXPECT_EQ(countRule(findings, "assert-side-effect"), 0u);
}

TEST(LintAssertSideEffect, AppliesEverywhereIncludingTests)
{
    auto findings =
        lintAs("tests/fixture.cc", "assert_side_effect_bad.cc");
    EXPECT_EQ(countRule(findings, "assert-side-effect"), 3u);
}

// --- no-fatal-below-app ---------------------------------------------------------

TEST(LintNoFatalBelowApp, FiresInLibraryCode)
{
    auto findings =
        lintAs("src/trace/fixture.cc", "fatal_below_app_bad.cc");
    EXPECT_EQ(countRule(findings, "no-fatal-below-app"), 2u);
}

TEST(LintNoFatalBelowApp, AppLayerIsExempt)
{
    auto findings =
        lintAs("src/app/fixture.cc", "fatal_below_app_bad.cc");
    EXPECT_EQ(countRule(findings, "no-fatal-below-app"), 0u);
}

TEST(LintNoFatalBelowApp, LoggingAndInvariantMachineryAreExempt)
{
    EXPECT_EQ(countRule(lintAs("src/support/logging.cc",
                               "fatal_below_app_bad.cc"),
                        "no-fatal-below-app"),
              0u);
    EXPECT_EQ(countRule(lintAs("src/support/invariant.hh",
                               "fatal_below_app_bad.cc"),
                        "no-fatal-below-app"),
              0u);
}

TEST(LintNoFatalBelowApp, OutOfScopeOutsideSrc)
{
    auto findings =
        lintAs("tests/fixture.cc", "fatal_below_app_bad.cc");
    EXPECT_EQ(countRule(findings, "no-fatal-below-app"), 0u);
}

TEST(LintNoFatalBelowApp, SuppressedByTrailingAllow)
{
    auto findings = lintAs("src/trace/fixture.cc",
                           "fatal_below_app_suppressed.cc");
    EXPECT_EQ(countRule(findings, "no-fatal-below-app"), 0u);
}

// --- raw-rename -----------------------------------------------------------------

TEST(LintRawRename, FiresOnStdAndFilesystemRename)
{
    auto findings =
        lintAs("src/trace/fixture.cc", "raw_rename_bad.cc");
    EXPECT_EQ(countRule(findings, "raw-rename"), 2u);
    ASSERT_GE(findings.size(), 2u);
    EXPECT_EQ(findings[0].line, 7u);
    EXPECT_EQ(findings[1].line, 9u);
}

TEST(LintRawRename, CleanOnAtomicReplace)
{
    auto findings = lintAs("src/trace/fixture.cc", "raw_rename_ok.cc");
    EXPECT_EQ(countRule(findings, "raw-rename"), 0u);
}

TEST(LintRawRename, AppliesInTestsAndToolsToo)
{
    EXPECT_EQ(countRule(lintAs("tests/fixture.cc", "raw_rename_bad.cc"),
                        "raw-rename"),
              2u);
    EXPECT_EQ(countRule(lintAs("tools/fixture.cc", "raw_rename_bad.cc"),
                        "raw-rename"),
              2u);
}

TEST(LintRawRename, SuppressedByTrailingAllow)
{
    auto findings =
        lintAs("src/trace/fixture.cc", "raw_rename_suppressed.cc");
    EXPECT_EQ(countRule(findings, "raw-rename"), 0u);
}

// --- engine details -------------------------------------------------------------

TEST(LintEngine, StripPreservesLineStructure)
{
    std::string stripped = vl::detail::stripCommentsAndStrings(
        "int a; // new int\n\"delete\"\n/* rand() */ int b;\n");
    EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 3);
    EXPECT_EQ(stripped.find("new"), std::string::npos);
    EXPECT_EQ(stripped.find("delete"), std::string::npos);
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintEngine, ViolationsInCommentsAndStringsAreIgnored)
{
    std::string content = "// int *p = new int;\n"
                          "const char *s = \"delete everything\";\n"
                          "/* std::random_device dev; */\n";
    auto findings = vl::runLint({{"src/app/fixture.cc", content}});
    EXPECT_TRUE(findings.empty());
}

TEST(LintEngine, FindingsAreOrderedAndFormatted)
{
    std::string content = "double zero() { return 0.0; }\n"
                          "double a() { return double(time(nullptr)); }\n"
                          "double b() { return double(time(nullptr)); }\n";
    auto findings = vl::runLint({{"src/app/fixture.cc", content}});
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_LT(findings[0].line, findings[1].line);
    std::string formatted = vl::formatFinding(findings[0]);
    EXPECT_NE(formatted.find("src/app/fixture.cc:2"), std::string::npos);
    EXPECT_NE(formatted.find("[wall-clock]"), std::string::npos);
}

TEST(LintEngine, WholeTreeIsCleanByConstruction)
{
    // The repo's own lint run is a separate ctest target driving the
    // viva-lint binary; here we just assert the engine accepts an empty
    // input set without findings.
    EXPECT_TRUE(vl::runLint({}).empty());
}

// --- shared exit-code contract (tools/cli_common.hh) ----------------------

TEST(CliContract, ExitCodesAreTheSharedContract)
{
    // 0 clean / 1 findings / 2 usage-or-io: both viva-lint and
    // viva-check build their exit status from these constants.
    EXPECT_EQ(viva::cli::kExitClean, 0);
    EXPECT_EQ(viva::cli::kExitFindings, 1);
    EXPECT_EQ(viva::cli::kExitUsage, 2);
    EXPECT_EQ(viva::cli::exitCodeForFindings(0), viva::cli::kExitClean);
    EXPECT_EQ(viva::cli::exitCodeForFindings(1),
              viva::cli::kExitFindings);
    EXPECT_EQ(viva::cli::exitCodeForFindings(42),
              viva::cli::kExitFindings);
}

TEST(CliContract, MissingSubdirIsAnError)
{
    // A scan of a nonexistent subdirectory must fail loudly (exit 2
    // path), not degrade into a silently-empty clean run.
    std::vector<viva::cli::Source> sources;
    std::ostringstream err;
    EXPECT_FALSE(viva::cli::collectSources(
        "viva-lint", std::filesystem::temp_directory_path(),
        {"no_such_subdir_xyzzy"}, sources, err));
    EXPECT_NE(err.str().find("not a directory"), std::string::npos);
}

TEST(CliContract, CollectSkipsFixturesAndSorts)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "viva_cli_contract_test";
    fs::remove_all(root);
    fs::create_directories(root / "src" / "lint_fixtures");
    std::ofstream(root / "src" / "b.cc") << "int b;\n";
    std::ofstream(root / "src" / "a.hh") << "int a;\n";
    std::ofstream(root / "src" / "ignored.txt") << "text\n";
    std::ofstream(root / "src" / "lint_fixtures" / "bad.cc")
        << "int bad;\n";

    std::vector<viva::cli::Source> sources;
    std::ostringstream err;
    ASSERT_TRUE(viva::cli::collectSources("viva-lint", root, {"src"},
                                          sources, err));
    ASSERT_EQ(sources.size(), 2u);
    EXPECT_EQ(sources[0].path, "src/a.hh");
    EXPECT_EQ(sources[1].path, "src/b.cc");
    fs::remove_all(root);
}

TEST(LintJobs, FindingsIdenticalAcrossThreadCounts)
{
    const std::vector<vl::FileInput> files = {
        {"src/demo/a.cc", fixture("unordered_iter_bad.cc")},
        {"src/demo/b.cc", fixture("raw_random_bad.cc")},
        {"src/demo/c.cc", fixture("new_delete_bad.cc")},
        {"src/layout/d.cc", fixture("float_bad.cc")},
        {"src/demo/e.cc", fixture("narrowing_bad.cc")},
        {"src/demo/f.cc", fixture("raw_chrono_bad.cc")},
    };
    const std::vector<vl::Finding> serial = vl::runLint(files, 1);
    const std::vector<vl::Finding> threaded = vl::runLint(files, 4);
    ASSERT_EQ(serial.size(), threaded.size());
    ASSERT_GT(serial.size(), 0u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(vl::formatFinding(serial[i]),
                  vl::formatFinding(threaded[i]));
    }
}
