/**
 * @file
 * Tests for the multi-scale aggregation core: time slices, the
 * hierarchy cut, Equation-1 values, edge contraction, and conservation
 * properties across scales.
 */

#include <gtest/gtest.h>

#include "agg/aggregate.hh"
#include "agg/hierarchy_cut.hh"
#include "agg/timeslice.hh"
#include "support/random.hh"
#include "trace/builder.hh"

namespace va = viva::agg;
namespace vt = viva::trace;

namespace
{

/**
 * GroupB > GroupA > {h1, h2, l1}, plus h3 outside GroupA -- the Fig. 3
 * shape. Host powers 10 and 30 (plus 5 for h3); utilizations half of
 * that; link bandwidth 100, used 40.
 */
struct Fig3Fixture
{
    vt::Trace trace;
    vt::ContainerId group_b, group_a, h1, h2, l1, h3;
    vt::MetricId power, power_used, bw, bw_used;

    Fig3Fixture()
    {
        vt::TraceBuilder b;
        power = b.powerMetric();
        power_used = b.powerUsedMetric();
        bw = b.bandwidthMetric();
        bw_used = b.bandwidthUsedMetric();

        b.beginGroup("GroupB", vt::ContainerKind::Site);
        group_b = b.currentGroup();
        b.beginGroup("GroupA", vt::ContainerKind::Cluster);
        group_a = b.currentGroup();
        h1 = b.host("h1");
        h2 = b.host("h2");
        l1 = b.link("l1");
        b.endGroup();
        h3 = b.host("h3");
        b.endGroup();

        vt::Trace &t = b.trace();
        t.addRelation(h1, l1);
        t.addRelation(l1, h2);
        t.addRelation(h2, h3);  // direct relation for contraction tests

        t.variable(h1, power).set(0.0, 10.0);
        t.variable(h2, power).set(0.0, 30.0);
        t.variable(h3, power).set(0.0, 5.0);
        t.variable(h1, power_used).set(0.0, 5.0);
        t.variable(h2, power_used).set(0.0, 15.0);
        t.variable(h3, power_used).set(0.0, 2.5);
        t.variable(l1, bw).set(0.0, 100.0);
        t.variable(l1, bw_used).set(0.0, 40.0);
        // close the span at t = 10
        t.variable(h1, power).set(10.0, 10.0);

        trace = b.take();
        // ids survive the move; refresh nothing.
    }
};

} // namespace

// --- time slices ---------------------------------------------------------------

TEST(TimeSlice, UniformSlicesPartitionTheSpan)
{
    auto slices = va::uniformSlices({0.0, 10.0}, 4);
    ASSERT_EQ(slices.size(), 4u);
    EXPECT_DOUBLE_EQ(slices[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(slices[0].end, 2.5);
    EXPECT_DOUBLE_EQ(slices[3].begin, 7.5);
    EXPECT_DOUBLE_EQ(slices[3].end, 10.0);
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_DOUBLE_EQ(slices[i].begin, slices[i - 1].end);
}

TEST(TimeSlice, SliceAt)
{
    auto s = va::sliceAt({0.0, 12.0}, va::SliceIndex{1}, 3);
    EXPECT_DOUBLE_EQ(s.begin, 4.0);
    EXPECT_DOUBLE_EQ(s.end, 8.0);
}

TEST(TimeSlice, SlidingWindows)
{
    auto w = va::slidingSlices({0.0, 10.0}, 4.0, 2.0);
    ASSERT_EQ(w.size(), 5u);
    EXPECT_DOUBLE_EQ(w[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(w[0].end, 4.0);
    EXPECT_DOUBLE_EQ(w[4].begin, 8.0);
    EXPECT_DOUBLE_EQ(w[4].end, 10.0);  // clipped at the span end
}

// --- hierarchy cut ----------------------------------------------------------------

TEST(HierarchyCut, StartsFullyDisaggregated)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    auto visible = cut.visibleNodes();
    // h1, h2, l1, h3 are the leaves.
    EXPECT_EQ(visible.size(), 4u);
    EXPECT_TRUE(cut.isVisible(f.h1));
    EXPECT_FALSE(cut.isVisible(f.group_a));
    EXPECT_EQ(cut.representative(f.h1), f.h1);
}

TEST(HierarchyCut, AggregateHidesSubtree)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_a);
    EXPECT_TRUE(cut.isCollapsed(f.group_a));
    EXPECT_TRUE(cut.isVisible(f.group_a));
    EXPECT_FALSE(cut.isVisible(f.h1));
    EXPECT_EQ(cut.representative(f.h1), f.group_a);
    EXPECT_EQ(cut.representative(f.h3), f.h3);
    // Visible: GroupA (aggregated) + h3.
    EXPECT_EQ(cut.visibleCount(), 2u);
}

TEST(HierarchyCut, NestedAggregationTopmostWins)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_a);
    cut.aggregate(f.group_b);
    EXPECT_EQ(cut.representative(f.h1), f.group_b);
    EXPECT_FALSE(cut.isVisible(f.group_a));
    EXPECT_EQ(cut.visibleCount(), 1u);  // just GroupB
}

TEST(HierarchyCut, DisaggregateExpandsOneLevel)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_b);
    cut.disaggregate(f.group_b);
    // GroupA becomes collapsed, h3 visible.
    EXPECT_TRUE(cut.isCollapsed(f.group_a));
    EXPECT_TRUE(cut.isVisible(f.h3));
    EXPECT_EQ(cut.visibleCount(), 2u);
    cut.disaggregate(f.group_a);
    EXPECT_EQ(cut.visibleCount(), 4u);  // back to all leaves
}

TEST(HierarchyCut, AggregateLeafIsNoop)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.h1);
    EXPECT_FALSE(cut.isCollapsed(f.h1));
    EXPECT_EQ(cut.visibleCount(), 4u);
}

TEST(HierarchyCut, AggregateToDepthLevels)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregateToDepth(1);  // GroupB level
    EXPECT_EQ(cut.visibleCount(), 1u);
    cut.aggregateToDepth(2);  // GroupA level: GroupA + h3
    EXPECT_EQ(cut.visibleCount(), 2u);
    cut.reset();
    EXPECT_EQ(cut.visibleCount(), 4u);
}

TEST(HierarchyCut, PreorderIsStable)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    auto a = cut.visibleNodes();
    auto b = cut.visibleNodes();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a[0], f.h1);  // preorder: first leaf first
}

// --- aggregated values -----------------------------------------------------------

TEST(Aggregator, LeafValueIsTimeAverage)
{
    Fig3Fixture f;
    va::Aggregator agg(f.trace);
    EXPECT_DOUBLE_EQ(agg.value(f.h1, f.power, {0.0, 10.0}), 10.0);
    EXPECT_DOUBLE_EQ(agg.value(f.l1, f.bw_used, {0.0, 10.0}), 40.0);
}

TEST(Aggregator, SumOverGroup)
{
    Fig3Fixture f;
    va::Aggregator agg(f.trace);
    // GroupA: h1 + h2 power = 40 (the link has no 'power' variable).
    EXPECT_DOUBLE_EQ(agg.value(f.group_a, f.power, {0.0, 10.0}), 40.0);
    // GroupB adds h3: 45.
    EXPECT_DOUBLE_EQ(agg.value(f.group_b, f.power, {0.0, 10.0}), 45.0);
    // Bandwidth aggregates only over the link.
    EXPECT_DOUBLE_EQ(agg.value(f.group_a, f.bw, {0.0, 10.0}), 100.0);
}

TEST(Aggregator, OtherOps)
{
    Fig3Fixture f;
    va::Aggregator agg(f.trace);
    EXPECT_DOUBLE_EQ(
        agg.value(f.group_b, f.power, {0.0, 10.0}, va::SpatialOp::Max),
        30.0);
    EXPECT_DOUBLE_EQ(
        agg.value(f.group_b, f.power, {0.0, 10.0}, va::SpatialOp::Min),
        5.0);
    EXPECT_DOUBLE_EQ(
        agg.value(f.group_b, f.power, {0.0, 10.0},
                  va::SpatialOp::Average),
        15.0);
}

TEST(Aggregator, TimeVaryingEquation1)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    auto h = b.host("h");
    vt::Trace &t = b.trace();
    t.variable(h, power).set(0.0, 100.0);
    t.variable(h, power).set(4.0, 10.0);
    t.variable(h, power).set(8.0, 100.0);
    vt::Trace trace = b.take();

    va::Aggregator agg(trace);
    // Over [2, 6): 2s at 100 + 2s at 10 -> average 55.
    EXPECT_DOUBLE_EQ(agg.value(h, power, {2.0, 6.0}), 55.0);
    // Zero-length slice: instantaneous value.
    EXPECT_DOUBLE_EQ(agg.value(h, power, {5.0, 5.0}), 10.0);
}

TEST(Aggregator, DistributionForIndicators)
{
    Fig3Fixture f;
    va::Aggregator agg(f.trace);
    auto d = agg.distribution(f.group_b, f.power, {0.0, 10.0});
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.median(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    EXPECT_GT(d.variance(), 0.0);
}

// --- conservation across scales (the core multi-scale property) ---------------

TEST(Aggregation, SumConservedAcrossCuts)
{
    Fig3Fixture f;
    va::Aggregator agg(f.trace);
    va::TimeSlice slice{0.0, 10.0};

    for (int level = 0; level < 4; ++level) {
        va::HierarchyCut cut(f.trace);
        if (level > 0)
            cut.aggregateToDepth(std::uint16_t(level));
        double total = 0.0;
        for (auto id : cut.visibleNodes())
            total += agg.value(id, f.power, slice);
        EXPECT_DOUBLE_EQ(total, 45.0) << "level " << level;
    }
}

// --- edge contraction ------------------------------------------------------------

TEST(VisibleEdges, LeafLevelKeepsAllRelations)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    auto edges = va::visibleEdges(f.trace, cut);
    EXPECT_EQ(edges.size(), 3u);
}

TEST(VisibleEdges, ContractionMergesAndDrops)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_a);
    auto edges = va::visibleEdges(f.trace, cut);
    // h1-l1 and l1-h2 vanish inside GroupA; h2-h3 becomes GroupA-h3.
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].multiplicity, 1u);
    EXPECT_EQ(std::min(edges[0].a, edges[0].b),
              std::min(f.group_a, f.h3));
}

TEST(VisibleEdges, MultiplicityCounts)
{
    vt::TraceBuilder b;
    b.beginGroup("g1", vt::ContainerKind::Cluster);
    auto a1 = b.host("a1");
    auto a2 = b.host("a2");
    b.endGroup();
    b.beginGroup("g2", vt::ContainerKind::Cluster);
    auto b1 = b.host("b1");
    auto b2 = b.host("b2");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.addRelation(a1, b1);
    t.addRelation(a2, b2);
    t.addRelation(a1, b2);
    vt::Trace trace = b.take();

    va::HierarchyCut cut(trace);
    cut.aggregateToDepth(1);
    auto edges = va::visibleEdges(trace, cut);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].multiplicity, 3u);
}

// --- buildView -----------------------------------------------------------------

TEST(BuildView, NodesEdgesAndValues)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_a);

    va::View view = va::buildView(f.trace, cut, {0.0, 10.0},
                                  {f.power, f.power_used});
    ASSERT_EQ(view.nodes.size(), 2u);
    ASSERT_EQ(view.edges.size(), 1u);

    std::size_t ga = view.indexOf(f.group_a);
    ASSERT_NE(ga, va::View::npos);
    EXPECT_TRUE(view.nodes[ga].aggregated);
    EXPECT_EQ(view.nodes[ga].leafCount, 3u);  // h1, h2, l1
    EXPECT_DOUBLE_EQ(view.valueOf(f.group_a, f.power), 40.0);
    EXPECT_DOUBLE_EQ(view.valueOf(f.group_a, f.power_used), 20.0);
    EXPECT_DOUBLE_EQ(view.valueOf(f.h3, f.power), 5.0);
    EXPECT_DOUBLE_EQ(view.valueOf(f.h3, f.bw), 0.0);  // not requested
}

TEST(BuildView, WithStats)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_b);
    va::View view =
        va::buildView(f.trace, cut, {0.0, 10.0}, {f.power},
                      va::SpatialOp::Sum, /*with_stats=*/true);
    ASSERT_EQ(view.nodes.size(), 1u);
    ASSERT_EQ(view.nodes[0].stats.size(), 1u);
    EXPECT_DOUBLE_EQ(view.nodes[0].values[0], 45.0);
    EXPECT_DOUBLE_EQ(view.nodes[0].stats[0].median, 10.0);
    EXPECT_DOUBLE_EQ(view.nodes[0].stats[0].max, 30.0);
    EXPECT_GT(view.nodes[0].stats[0].variance, 0.0);
}

TEST(BuildView, StatsAgreeWithValuesForEveryOp)
{
    Fig3Fixture f;
    va::HierarchyCut cut(f.trace);
    cut.aggregate(f.group_b);
    for (auto op : {va::SpatialOp::Sum, va::SpatialOp::Average,
                    va::SpatialOp::Max, va::SpatialOp::Min}) {
        va::View plain =
            va::buildView(f.trace, cut, {0.0, 10.0}, {f.power}, op);
        va::View stats = va::buildView(f.trace, cut, {0.0, 10.0},
                                       {f.power}, op, true);
        EXPECT_DOUBLE_EQ(plain.nodes[0].values[0],
                         stats.nodes[0].values[0]);
    }
}

// --- randomized parallel-vs-serial stress ---------------------------------------

namespace
{

/**
 * A randomized container hierarchy: recursive groups with random
 * fan-out, hosts (sometimes without the variable, to exercise the
 * skip-missing path), and piecewise-constant histories with random
 * change points. Everything derives from the seed, so a failure
 * reproduces exactly.
 */
struct RandomTrace
{
    vt::Trace trace;
    vt::MetricId metric = vt::kNoMetric;
    std::vector<vt::ContainerId> groups;  ///< every internal container

    explicit RandomTrace(std::uint64_t seed)
    {
        viva::support::Rng rng(seed);
        vt::TraceBuilder b;
        metric = b.powerUsedMetric();
        groups.push_back(b.currentGroup());  // the root
        buildLevel(b, rng, 0);
        trace = b.take();
    }

  private:
    void buildLevel(vt::TraceBuilder &b, viva::support::Rng &rng,
                    int depth)
    {
        std::size_t nhosts = 1 + rng.index(6);
        for (std::size_t i = 0; i < nhosts; ++i) {
            vt::ContainerId h =
                b.host("h" + std::to_string(depth) + "_" +
                       std::to_string(i));
            if (rng.uniform() < 0.85) {
                vt::Variable &v = b.trace().variable(h, metric);
                double t = 0.0;
                std::size_t points = 1 + rng.index(5);
                for (std::size_t k = 0; k < points; ++k) {
                    v.set(t, rng.uniform(0.0, 100.0));
                    t += rng.uniform(0.2, 3.0);
                }
            }
        }
        if (depth >= 3)
            return;
        std::size_t nsub = rng.index(4 - std::size_t(depth));
        for (std::size_t i = 0; i < nsub; ++i) {
            b.beginGroup("g" + std::to_string(depth) + "_" +
                         std::to_string(i));
            groups.push_back(b.currentGroup());
            buildLevel(b, rng, depth + 1);
            b.endGroup();
        }
    }
};

} // namespace

/**
 * Stress: on randomized hierarchies and random time slices, every
 * Equation-1 combination computed with 2 and 8 workers must be bitwise
 * identical to the serial value, for every group of the hierarchy.
 */
TEST(ParallelStress, RandomHierarchiesMatchSerialExhaustively)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        RandomTrace rt(seed);
        viva::support::Rng rng(seed * 1000 + 1);
        va::Aggregator serial(rt.trace, 1);
        va::Aggregator par2(rt.trace, 2);
        va::Aggregator par8(rt.trace, 8);
        for (int s = 0; s < 4; ++s) {
            double a = rng.uniform(0.0, 10.0);
            double len = rng.uniform(0.1, 8.0);
            va::TimeSlice slice{a, a + len};
            for (vt::ContainerId g : rt.groups) {
                for (auto sop :
                     {va::SpatialOp::Sum, va::SpatialOp::Average,
                      va::SpatialOp::Max, va::SpatialOp::Min}) {
                    for (auto top :
                         {va::TemporalOp::Average, va::TemporalOp::Max,
                          va::TemporalOp::Min,
                          va::TemporalOp::Integral}) {
                        double v1 =
                            serial.value(g, rt.metric, slice, sop, top);
                        ASSERT_EQ(v1, par2.value(g, rt.metric, slice,
                                                 sop, top))
                            << "seed " << seed << " group " << g;
                        ASSERT_EQ(v1, par8.value(g, rt.metric, slice,
                                                 sop, top))
                            << "seed " << seed << " group " << g;
                    }
                }
            }
        }
    }
}

/**
 * Stress: random cuts of random hierarchies, viewed in parallel, are
 * bitwise identical to the serial build -- values and indicators.
 */
TEST(ParallelStress, RandomCutsViewIdentically)
{
    for (std::uint64_t seed = 20; seed <= 26; ++seed) {
        RandomTrace rt(seed);
        viva::support::Rng rng(seed * 77);
        va::HierarchyCut cut(rt.trace);
        for (vt::ContainerId g : rt.groups)
            if (rng.uniform() < 0.4)
                cut.aggregate(g);
        va::TimeSlice slice{rng.uniform(0.0, 2.0), rng.uniform(3.0, 9.0)};
        std::vector<va::MetricRequest> req{
            va::MetricRequest(rt.metric, va::SpatialOp::Average,
                              va::TemporalOp::Integral)};
        va::View v1 = va::buildView(rt.trace, cut, slice, req, true, 1);
        va::View v8 = va::buildView(rt.trace, cut, slice, req, true, 8);
        ASSERT_EQ(v1.nodes.size(), v8.nodes.size()) << "seed " << seed;
        for (std::size_t i = 0; i < v1.nodes.size(); ++i) {
            ASSERT_EQ(v1.nodes[i].id, v8.nodes[i].id);
            ASSERT_EQ(v1.nodes[i].values[0], v8.nodes[i].values[0]);
            ASSERT_EQ(v1.nodes[i].stats[0].variance,
                      v8.nodes[i].stats[0].variance);
            ASSERT_EQ(v1.nodes[i].stats[0].median,
                      v8.nodes[i].stats[0].median);
        }
    }
}
