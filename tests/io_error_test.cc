/**
 * @file
 * One test per reader error path: every rejection branch of
 * trace::readTrace and the structural branches of trace::readPajeTrace
 * must yield a structured support::Error -- correct code, a message
 * naming the offending line, and a non-empty file:line context chain --
 * never a crash or a fatal().
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/error.hh"
#include "trace/builder.hh"
#include "trace/io.hh"
#include "trace/paje.hh"

namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

/** Parse a native-format document and expect a rejection. */
vs::Error
rejectTrace(const std::string &body,
            const vt::ParseBudget &budget = {})
{
    std::istringstream in(body);
    auto result = vt::readTrace(in, budget);
    EXPECT_FALSE(result.ok()) << "input unexpectedly accepted:\n" << body;
    if (result.ok())
        return VIVA_ERROR(vs::Errc::Invalid, "accepted");
    return result.error();
}

/** Parse a Paje document and expect a rejection. */
vs::Error
rejectPaje(const std::string &body,
           const vt::ParseBudget &budget = {})
{
    std::istringstream in(body);
    auto result = vt::readPajeTrace(in, budget);
    EXPECT_FALSE(result.ok()) << "input unexpectedly accepted:\n" << body;
    if (result.ok())
        return VIVA_ERROR(vs::Errc::Invalid, "accepted");
    return result.error();
}

void
expectParse(const vs::Error &e, const std::string &needle)
{
    EXPECT_EQ(e.code(), vs::Errc::Parse) << e.toString();
    EXPECT_NE(e.toString().find(needle), std::string::npos) << e.toString();
    EXPECT_FALSE(e.context().empty());
}

/** A valid prefix: header, two containers, one metric. */
const char *kPrefix =
    "viva-trace 1\n"
    "container 1 - host alpha\n"
    "container 2 - host beta\n"
    "metric 0 gauge - W power\n";

std::string
doc(const std::string &tail)
{
    return std::string(kPrefix) + tail;
}

} // namespace

// --- header and framing --------------------------------------------------------

TEST(ReadTraceErrors, EmptyInput)
{
    expectParse(rejectTrace(""), "empty input");
}

TEST(ReadTraceErrors, MissingHeader)
{
    expectParse(rejectTrace("container 1 - host a\n"),
                "missing 'viva-trace 1' header");
}

TEST(ReadTraceErrors, UnknownVerb)
{
    vs::Error e = rejectTrace(doc("frobnicate 1 2 3\n"));
    expectParse(e, "unknown record 'frobnicate'");
    // The message carries the line number of the offending record.
    EXPECT_NE(e.toString().find("line 5"), std::string::npos) << e.toString();
}

TEST(ReadTraceErrors, CommentsAndBlanksAreAccepted)
{
    std::istringstream in(doc("\n# a comment\n  \n"));
    auto result = vt::readTrace(in);
    ASSERT_TRUE(result.ok()) << result.error().toString();
    EXPECT_EQ(result->containerCount(), 3u);
}

// --- container records ---------------------------------------------------------

TEST(ReadTraceErrors, MalformedContainerRecord)
{
    expectParse(rejectTrace("viva-trace 1\ncontainer 1 -\n"),
                "malformed container record");
}

TEST(ReadTraceErrors, BadContainerId)
{
    expectParse(rejectTrace("viva-trace 1\ncontainer xyz - host a\n"),
                "bad container id");
}

TEST(ReadTraceErrors, BadParentId)
{
    expectParse(rejectTrace("viva-trace 1\ncontainer 1 99 host a\n"),
                "bad parent id");
}

TEST(ReadTraceErrors, ContainerNameWithSlash)
{
    expectParse(rejectTrace("viva-trace 1\ncontainer 1 - host a/b\n"),
                "must not contain '/'");
}

TEST(ReadTraceErrors, DuplicateContainer)
{
    expectParse(rejectTrace("viva-trace 1\n"
                            "container 1 - host a\n"
                            "container 2 - host a\n"),
                "duplicate container 'a'");
}

TEST(ReadTraceErrors, NonDenseContainerIds)
{
    expectParse(rejectTrace("viva-trace 1\ncontainer 7 - host a\n"),
                "container ids must be dense");
}

// --- metric records ------------------------------------------------------------

TEST(ReadTraceErrors, MalformedMetricRecord)
{
    expectParse(rejectTrace("viva-trace 1\nmetric 0 gauge -\n"),
                "malformed metric record");
}

TEST(ReadTraceErrors, BadMetricId)
{
    expectParse(rejectTrace("viva-trace 1\nmetric abc gauge - - m\n"),
                "bad metric id");
}

TEST(ReadTraceErrors, BadCapacityOfId)
{
    expectParse(rejectTrace("viva-trace 1\nmetric 0 gauge 42 - m\n"),
                "bad capacityOf id");
}

TEST(ReadTraceErrors, DuplicateMetric)
{
    expectParse(rejectTrace("viva-trace 1\n"
                            "metric 0 gauge - - m\n"
                            "metric 1 gauge - - m\n"),
                "duplicate metric 'm'");
}

TEST(ReadTraceErrors, NonDenseMetricIds)
{
    expectParse(rejectTrace("viva-trace 1\nmetric 3 gauge - - m\n"),
                "metric ids must be dense");
}

// --- relation records ----------------------------------------------------------

TEST(ReadTraceErrors, MalformedRelRecord)
{
    expectParse(rejectTrace(doc("rel 1\n")), "malformed rel record");
}

TEST(ReadTraceErrors, BadRelEndpoints)
{
    expectParse(rejectTrace(doc("rel 1 99\n")), "bad rel endpoints");
}

// --- point records -------------------------------------------------------------

TEST(ReadTraceErrors, MalformedPointRecord)
{
    expectParse(rejectTrace(doc("p 1 0 2.5\n")), "malformed point record");
}

TEST(ReadTraceErrors, BadPointFields)
{
    expectParse(rejectTrace(doc("p 1 0 xx 1\n")), "bad point fields");
}

TEST(ReadTraceErrors, NonFinitePointFields)
{
    expectParse(rejectTrace(doc("p 1 0 inf 1\n")),
                "non-finite point fields");
    expectParse(rejectTrace(doc("p 1 0 0 nan\n")),
                "non-finite point fields");
}

TEST(ReadTraceErrors, PointReferencesUnknownIds)
{
    expectParse(rejectTrace(doc("p 9 0 0 1\n")),
                "point references unknown ids");
    expectParse(rejectTrace(doc("p 1 5 0 1\n")),
                "point references unknown ids");
}

// --- state records -------------------------------------------------------------

TEST(ReadTraceErrors, MalformedStateRecord)
{
    expectParse(rejectTrace(doc("state 1 0 1\n")),
                "malformed state record");
}

TEST(ReadTraceErrors, BadStateFields)
{
    expectParse(rejectTrace(doc("state 1 xx 1 running\n")),
                "bad state fields");
    expectParse(rejectTrace(doc("state 9 0 1 running\n")),
                "bad state fields");
}

TEST(ReadTraceErrors, NonFiniteStateInterval)
{
    expectParse(rejectTrace(doc("state 1 0 inf running\n")),
                "non-finite state interval");
}

TEST(ReadTraceErrors, ReversedStateInterval)
{
    expectParse(rejectTrace(doc("state 1 5 1 running\n")),
                "reversed state interval");
}

// --- file-level wrappers -------------------------------------------------------

TEST(ReadTraceErrors, MissingFileYieldsIoError)
{
    auto result = vt::readTraceFile("/no/such/dir/missing.viva");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
    EXPECT_NE(result.error().toString().find("missing.viva"),
              std::string::npos);
}

TEST(ReadTraceErrors, FileErrorsCarryThePathAsContext)
{
    auto dir = std::filesystem::temp_directory_path() / "viva_io_error_test";
    std::filesystem::create_directories(dir);
    std::string path = (dir / "broken.viva").string();
    {
        std::ofstream out(path);
        out << "viva-trace 1\ncontainer xyz - host a\n";
    }
    auto result = vt::readTraceFile(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Parse);
    // Two frames: the parse site, and the readTraceFile wrapper naming
    // the file.
    EXPECT_GE(result.error().context().size(), 2u);
    EXPECT_NE(result.error().toString().find("reading '" + path + "'"),
              std::string::npos)
        << result.error().toString();
}

TEST(ReadTraceErrors, WriteToUnwritablePathYieldsIoError)
{
    auto result = vt::writeTraceFile(vt::makeFigure1Trace(),
                                     "/no/such/dir/out.viva");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
}

// --- Paje reader ---------------------------------------------------------------

namespace
{

/** A minimal well-formed Paje preamble defining PajeCreateContainer. */
const char *kPajePrefix =
    "%EventDef PajeCreateContainer 1\n"
    "% Time date\n"
    "% Alias string\n"
    "% Type string\n"
    "% Container string\n"
    "% Name string\n"
    "%EndEventDef\n";

} // namespace

TEST(ReadPajeErrors, MalformedEventDef)
{
    expectParse(rejectPaje("%EventDef PajeCreateContainer\n"),
                "malformed %EventDef");
}

TEST(ReadPajeErrors, EndEventDefWithoutDef)
{
    expectParse(rejectPaje("%EndEventDef\n"), "%EndEventDef without def");
}

TEST(ReadPajeErrors, MalformedFieldDefinition)
{
    expectParse(rejectPaje("%EventDef PajeCreateContainer 1\n% Time\n"),
                "malformed field definition");
}

TEST(ReadPajeErrors, UnterminatedEventDef)
{
    expectParse(rejectPaje("%EventDef PajeCreateContainer 1\n% Time date\n"),
                "unterminated %EventDef");
}

TEST(ReadPajeErrors, UnterminatedQuote)
{
    expectParse(rejectPaje(std::string(kPajePrefix) +
                           "1 0.0 a T 0 \"unclosed\n"),
                "unterminated quote");
}

TEST(ReadPajeErrors, UnknownEventId)
{
    expectParse(rejectPaje(std::string(kPajePrefix) + "99 0.0 a b c d\n"),
                "unknown event id '99'");
}

TEST(ReadPajeErrors, TooFewFields)
{
    expectParse(rejectPaje(std::string(kPajePrefix) + "1 0.0 a\n"),
                "too few fields");
}

TEST(ReadPajeErrors, EmptyContainerName)
{
    expectParse(rejectPaje(std::string(kPajePrefix) +
                           "1 0.0 c1 T 0 \"\"\n"),
                "empty container name");
}

TEST(ReadPajeErrors, MissingPajeFileYieldsIoError)
{
    auto result = vt::readPajeTraceFile("/no/such/dir/missing.paje");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
}

TEST(ReadPajeErrors, RoundTripStillWorks)
{
    std::ostringstream out;
    vt::writePajeTrace(vt::makeFigure1Trace(), out);
    std::istringstream in(out.str());
    auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.ok()) << result.error().toString();
    EXPECT_EQ(result->trace.containerCount(),
              vt::makeFigure1Trace().containerCount());
}
