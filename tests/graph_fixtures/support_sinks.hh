// Fed to the engine as src/support/log.hh: the fatal/panic and
// warnLimited sink definitions the transitive rules anchor on.
#pragma once

namespace viva::support
{

[[noreturn]] inline void
fatal(const char *where)
{
    (void)where;
    throw 0;
}

[[noreturn]] inline void
panic(const char *where)
{
    (void)where;
    throw 0;
}

inline void
warnLimited(const char *key)
{
    (void)key;
}

} // namespace viva::support
