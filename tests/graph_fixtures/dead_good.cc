// Fed to the engine as src/demo/dead_good.cc: used() is called from
// the driver's main(), so it is live.
namespace viva::demo
{

int
used()
{
    return 4;
}

} // namespace viva::demo
