// Fed to the engine as tests/driver.cc: the root that keeps each
// fixture's entry function alive for the dead-symbol walk.
namespace viva::demo
{
int entryFatalBad();
int entryFatalGood();
int entryFatalWaived();
long entryClockBad();
double entryClockGood();
long entryClockWaived();
void entryHotBad(int threads);
void entryHotGood(int threads);
void entryHotWaived(int threads);
int used();
} // namespace viva::demo

int
main()
{
    viva::demo::entryFatalBad();
    viva::demo::entryFatalGood();
    viva::demo::entryFatalWaived();
    viva::demo::entryClockBad();
    viva::demo::entryClockGood();
    viva::demo::entryClockWaived();
    viva::demo::entryHotBad(2);
    viva::demo::entryHotGood(2);
    viva::demo::entryHotWaived(2);
    return viva::demo::used();
}
