// Fed to the engine as src/demo/fatal_bad.cc: both functions reach
// fatal() transitively, so both must be flagged.
#include "support/log.hh"

namespace viva::demo
{

int
helperDepth()
{
    viva::support::fatal("demo");
    return 1;
}

int
entryFatalBad()
{
    return helperDepth();
}

} // namespace viva::demo
