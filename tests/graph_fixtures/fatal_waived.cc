// Fed to the engine as src/demo/fatal_waived.cc: the waived boundary
// helper absorbs reachability, so its caller is clean too.
#include "support/log.hh"

namespace viva::demo
{

int
dieAtBoundary()  // viva-graph: allow(fatal-reachable): demo CLI boundary; dying here is the contract
{
    viva::support::fatal("demo");
    return 1;
}

int
entryFatalWaived()
{
    return dieAtBoundary();
}

} // namespace viva::demo
