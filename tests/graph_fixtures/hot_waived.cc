// Fed to the engine as src/demo/hot_waived.cc: same I/O as hot_bad,
// but the call line carries a justified waiver.
#include <cstdio>

namespace viva::demo
{

void
beacon(int i)
{
    std::printf("beacon %d\n", i);
}

void
entryHotWaived(int threads)
{
    pool.parallelFor(0, 8, 1, threads,
                     [&](std::size_t lo, std::size_t hi) {
                         beacon(int(hi - lo));  // viva-graph: allow(io-in-hot-path): deliberate once-per-chunk progress beacon
                     });
}

} // namespace viva::demo
