// Fed to the engine as src/demo/clock_waived.cc: a justified raw read
// absorbs the taint at the waived symbol.
#include <chrono>

namespace viva::demo
{

long
entryClockWaived()  // viva-graph: allow(clock-reachable): demo calibration probe wants the raw tick
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace viva::demo
