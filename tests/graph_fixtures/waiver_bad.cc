// Fed to the engine as src/demo/waiver_bad.cc: a rationale-free
// waiver and an unknown rule name are findings themselves.
namespace viva::demo
{

// viva-graph: allow(dead)
int
noRationale()
{
    return 1;
}

int
unknownRule()  // viva-graph: allow(no-such-rule): typo'd rule name
{
    return 2;
}

} // namespace viva::demo
