// Fed to the engine as src/demo/clock_bad.cc: a raw steady_clock read
// outside the clock shim taints the reader and its caller.
#include <chrono>

namespace viva::demo
{

long
readRawClock()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

long
entryClockBad()
{
    return readRawClock();
}

} // namespace viva::demo
