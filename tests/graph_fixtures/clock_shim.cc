// Fed to the engine as src/support/clock.cc: the one sanctioned
// chrono reader. Reachability is absorbed here.
#include <chrono>

namespace viva::support
{

double
monotonicSeconds()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace viva::support
