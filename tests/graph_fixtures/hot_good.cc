// Fed to the engine as src/demo/hot_good.cc: the chunk lambda only
// does arithmetic, so the hot path stays clean.
namespace viva::demo
{

int
accumulate(int i)
{
    return i * i;
}

void
entryHotGood(int threads)
{
    pool.parallelFor(0, 8, 1, threads,
                     [&](std::size_t lo, std::size_t hi) {
                         accumulate(int(hi - lo));
                     });
}

} // namespace viva::demo
