// Fed to the engine as src/demo/unresolved.cc: a call through a
// callable table is recorded as an unresolved site, never as a named
// edge.
#include <functional>
#include <vector>

namespace viva::demo
{

int
callThrough(const std::vector<std::function<int()>> &table)
{
    return table[0]();
}

} // namespace viva::demo
