// Fed to the engine as src/demo/dead_bad.cc: orphan() has no caller
// anywhere, so the dead-symbol rule must flag it.
namespace viva::demo
{

int
orphan()
{
    return 3;
}

} // namespace viva::demo
