// Fed to the engine as src/demo/fatal_good.cc: nothing here reaches
// fatal()/panic().
namespace viva::demo
{

int
pureHelper(int v)
{
    return v * 3;
}

int
entryFatalGood()
{
    return pureHelper(2);
}

} // namespace viva::demo
