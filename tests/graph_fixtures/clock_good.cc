// Fed to the engine as src/demo/clock_good.cc: reads time through the
// shim, so the chrono taint never reaches it.
namespace viva::demo
{

double
entryClockGood()
{
    return viva::support::monotonicSeconds();
}

} // namespace viva::demo
