// Fed to the engine as src/demo/hot_bad.cc: the chunk lambda calls a
// helper that reaches printf, so the hot call site must be flagged.
#include <cstdio>

namespace viva::demo
{

void
logProgress(int i)
{
    std::printf("chunk %d\n", i);
}

void
entryHotBad(int threads)
{
    pool.parallelFor(0, 8, 1, threads,
                     [&](std::size_t lo, std::size_t hi) {
                         logProgress(int(hi - lo));
                     });
}

} // namespace viva::demo
