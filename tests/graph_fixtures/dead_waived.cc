// Fed to the engine as src/demo/dead_waived.cc: keeper() is uncalled
// but carries a justified waiver, and stays quiet.
namespace viva::demo
{

int
keeper()  // viva-graph: allow(dead): public API surface kept for symmetry with used()
{
    return 5;
}

} // namespace viva::demo
