// Fed to the engine as src/demo/overload.cc: the two scale()
// overloads collapse onto one graph node that both calls resolve to.
namespace viva::demo
{

int
scale(int v)
{
    return v * 2;
}

double
scale(double v)
{
    return v * 2.0;
}

double
entryOverload()
{
    return scale(1) + scale(2.0);
}

} // namespace viva::demo
