#pragma once

#include "../support/logging.hh"

using namespace std;

int hygieneFixture();
