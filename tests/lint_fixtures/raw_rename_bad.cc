#include <cstdio>
#include <filesystem>

bool
swapIn(const char *temp, const char *final_path)
{
    if (std::rename(temp, final_path) != 0)
        return false;
    std::filesystem::rename(temp, final_path);
    return true;
}
