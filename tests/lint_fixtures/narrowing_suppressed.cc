#include <vector>

void f(const std::vector<int> &v)
{
    int n = v.size(); // viva-lint: allow(narrowing)
    (void)n;
}
