#include <cassert>
#include <vector>

void f(std::vector<int> &v, int i)
{
    assert(++i < 10);
    assert(v.size() == 1 || v.insert(v.end(), i) != v.end());
    VIVA_ASSERT(i = 3, "oops");
}
