#include <cstdio>

bool
swapIn(const char *temp, const char *final_path)
{
    return std::rename(temp, final_path) == 0;  // viva-lint: allow(raw-rename)
}
