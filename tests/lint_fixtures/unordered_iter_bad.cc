#include <unordered_map>

int
sum()
{
    std::unordered_map<int, int> table;
    int total = 0;
    for (const auto &entry : table)
        total += entry.second;
    return total;
}
