#pragma once

int goodHeader();
