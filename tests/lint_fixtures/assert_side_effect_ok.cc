#include <cassert>
#include <vector>

void f(const std::vector<int> &v, int i)
{
    assert(i + 1 < 10);
    assert(v.size() <= 16);
    assert(i == 3 || i != 4);
    VIVA_ASSERT(i >= 0, "index ", i, " negative");
}
