#include "support/atomic_file.hh"

bool
swapIn(const char *temp, const char *final_path)
{
    return viva::support::atomicReplace(temp, final_path).ok();
}
