#include <cstdint>
#include <string>
#include <vector>

void f(const std::vector<int> &v, const std::string &s)
{
    int n = v.size();
    std::uint32_t m = s.length() + 1;
    std::uint32_t wrap = -1;
    (void)n;
    (void)m;
    (void)wrap;
}
