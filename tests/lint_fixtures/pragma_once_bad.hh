#ifndef FIXTURE_PRAGMA_ONCE_BAD_HH
#define FIXTURE_PRAGMA_ONCE_BAD_HH

int badHeader();

#endif
