#include <memory>

struct Pinned
{
    Pinned() = default;
    Pinned(const Pinned &) = delete;
    Pinned &operator=(const Pinned &) = delete;
};

std::unique_ptr<int>
make()
{
    return std::make_unique<int>(3);
}
