#include <unordered_map>

int
sum()
{
    std::unordered_map<int, int> table;
    int total = 0;
    // Integer sum: exactly order-independent.
    for (const auto &entry : table)  // viva-lint: allow(unordered-iter)
        total += entry.second;
    return total;
}
