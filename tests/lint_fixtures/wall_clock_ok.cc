#include <chrono>

long
elapsed()
{
    auto begin = std::chrono::steady_clock::now();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               end - begin)
        .count();
}
