// Fixture: fatal()/panic() in library code must be flagged.
#include "support/logging.hh"

void
loadThing(bool ok)
{
    if (!ok)
        viva::support::fatal("loadThing", "cannot open file");
    viva::support::panic("loadThing", "unreachable");
}
