#include <chrono>

unsigned long long
stamp()
{
    auto t0 = std::chrono::steady_clock::now();  // viva-lint: allow(raw-chrono)
    return static_cast<unsigned long long>(
        t0.time_since_epoch().count());
}
