double
half(double v)
{
    float narrow = 0.5f;
    return v * double(narrow);
}
