#include "support/clock.hh"

unsigned long long
elapsed()
{
    auto t0 = viva::support::clock().nowNanos();
    auto t1 = viva::support::clock().nowNanos();
    return t1 - t0;
}
