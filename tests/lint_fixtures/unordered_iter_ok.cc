#include <map>
#include <vector>

int
sum()
{
    std::vector<int> values;
    std::map<int, int> ordered;
    int total = 0;
    for (int v : values)
        total += v;
    for (const auto &entry : ordered)
        total += entry.second;
    return total;
}
