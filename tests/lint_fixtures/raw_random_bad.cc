#include <cstdlib>
#include <random>

int
roll()
{
    std::random_device dev;
    return static_cast<int>(dev() % 6) + rand() % 6;
}
