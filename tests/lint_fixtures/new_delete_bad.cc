int
leak()
{
    int *p = new int(3);
    int v = *p;
    delete p;
    return v;
}
