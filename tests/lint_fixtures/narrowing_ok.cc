#include <cstddef>
#include <cstdint>
#include <vector>

void f(const std::vector<int> &v)
{
    std::size_t n = v.size();
    int cast_ok = static_cast<int>(v.size());
    std::uint64_t wide = v.size();
    int minus_one = -1;
    (void)n;
    (void)cast_ok;
    (void)wide;
    (void)minus_one;
}
