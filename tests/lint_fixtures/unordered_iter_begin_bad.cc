#include <unordered_set>

using KeySet = std::unordered_set<unsigned long>;

unsigned long
first(const KeySet &keys)
{
    KeySet copy = keys;
    return copy.empty() ? 0 : *copy.begin();
}
