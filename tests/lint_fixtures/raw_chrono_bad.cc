#include <chrono>

unsigned long long
elapsed()
{
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::high_resolution_clock::now();
    return static_cast<unsigned long long>((t1 - t0).count());
}
