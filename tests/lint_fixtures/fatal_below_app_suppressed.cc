// Fixture: an allow() comment silences no-fatal-below-app.
#include "support/logging.hh"

void
boundaryHelper(bool ok)
{
    if (!ok)
        viva::support::fatal("helper", "die");  // viva-lint: allow(no-fatal-below-app)
}
