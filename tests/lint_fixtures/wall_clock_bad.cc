#include <chrono>
#include <ctime>

double
stamp()
{
    auto now = std::chrono::system_clock::now();
    (void)now;
    return double(time(nullptr));
}
