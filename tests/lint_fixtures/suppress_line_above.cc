#include <unordered_map>

int
sum()
{
    std::unordered_map<int, int> table;
    int total = 0;
    // viva-lint: allow(unordered-iter)
    for (const auto &entry : table)
        total += entry.second;
    return total;
}
