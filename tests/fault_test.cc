/**
 * @file
 * Tests for the fault-tolerance layer: the support::Error/Expected
 * plumbing, the deterministic FaultInjector, rate-limited warnings,
 * parse budgets, and every compiled-in injection point observed
 * through its public entry point (trace read/write, Paje read, viz
 * writers, NaN injection into the force accumulation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "app/commands.hh"
#include "app/session.hh"
#include "layout/force.hh"
#include "layout/graph.hh"
#include "support/error.hh"
#include "support/fault.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "trace/builder.hh"
#include "trace/io.hh"
#include "trace/paje.hh"
#include "viz/svg.hh"

namespace vap = viva::app;
namespace vl = viva::layout;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

/** RAII: leave no armed point or warn counter behind for other tests. */
struct FaultGuard
{
    FaultGuard() { vs::FaultInjector::global().disarmAll(); }
    ~FaultGuard()
    {
        vs::FaultInjector::global().disarmAll();
        vs::resetWarnLimits();
    }
};

std::string
tempDir()
{
    auto dir = std::filesystem::temp_directory_path() / "viva_fault_test";
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::string
serialized(const vt::Trace &t)
{
    std::ostringstream out;
    vt::writeTrace(t, out);
    return out.str();
}

} // namespace

// --- Error / Expected basics ---------------------------------------------------

TEST(Error, CarriesCodeMessageAndContextChain)
{
    vs::Error e = VIVA_ERROR(vs::Errc::Parse, "line 3: bad id");
    unsigned first_line = e.context().back().line;
    e = VIVA_ERROR_CONTEXT(e, "reading 'x.viva'");

    EXPECT_EQ(e.code(), vs::Errc::Parse);
    EXPECT_EQ(e.message(), "line 3: bad id");
    ASSERT_EQ(e.context().size(), 2u);
    EXPECT_EQ(e.context()[0].line, first_line);

    std::string s = e.toString();
    EXPECT_NE(s.find("parse:"), std::string::npos);
    EXPECT_NE(s.find("bad id"), std::string::npos);
    EXPECT_NE(s.find("fault_test.cc"), std::string::npos);
    EXPECT_NE(s.find("reading 'x.viva'"), std::string::npos);
}

TEST(Error, EveryCodeHasAName)
{
    for (vs::Errc c : {vs::Errc::Io, vs::Errc::Parse, vs::Errc::Budget,
                       vs::Errc::NotFound, vs::Errc::Invalid,
                       vs::Errc::Deadline})
        EXPECT_STRNE(vs::errcName(c), "");
}

TEST(Expected, ValueAndErrorSides)
{
    vs::Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 7);

    vs::Expected<int> bad(VIVA_ERROR(vs::Errc::Io, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), vs::Errc::Io);

    vs::Expected<void> ok_void;
    EXPECT_TRUE(ok_void.ok());
    vs::Expected<void> bad_void(VIVA_ERROR(vs::Errc::Invalid, "x"));
    EXPECT_FALSE(bad_void.ok());
}

// --- FaultInjector determinism -------------------------------------------------

TEST(FaultInjector, UnarmedNeverFires)
{
    FaultGuard guard;
    auto &inj = vs::FaultInjector::global();
    EXPECT_FALSE(inj.anyArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(vs::faultAt("trace.read.stream"));
    EXPECT_EQ(inj.hitCount("trace.read.stream"), 0u);
}

TEST(FaultInjector, SameSeedSameFiringPattern)
{
    FaultGuard guard;
    auto &inj = vs::FaultInjector::global();

    auto pattern = [&](std::uint64_t seed) {
        vs::FaultSpec spec;
        spec.seed = seed;
        spec.probability = 0.3;
        inj.arm("trace.read.stream", spec);
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i)
            fired.push_back(inj.shouldFail("trace.read.stream"));
        return fired;
    };

    std::vector<bool> a = pattern(42), b = pattern(42), c = pattern(7);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // probability 0.3 over 200 hits: some fire, not all.
    std::size_t fires = std::size_t(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, 200u);
}

TEST(FaultInjector, SkipAndMaxFiresWindowTheFailures)
{
    FaultGuard guard;
    auto &inj = vs::FaultInjector::global();
    vs::FaultSpec spec;
    spec.skip = 3;
    spec.maxFires = 2;
    inj.arm("trace.read.stream", spec);

    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i)
        fired.push_back(inj.shouldFail("trace.read.stream"));
    std::vector<bool> expect = {false, false, false, true, true,
                                false, false, false, false, false};
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(inj.hitCount("trace.read.stream"), 10u);
    EXPECT_EQ(inj.fireCount("trace.read.stream"), 2u);
}

TEST(FaultInjector, KnownPointsAreSortedAndComplete)
{
    const auto &points = vs::FaultInjector::knownPoints();
    EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
    for (const char *p :
         {"ckpt.read.stream", "ckpt.write.stream", "layout.force.nan",
          "paje.read.stream", "trace.parse.budget", "trace.read.stream",
          "trace.write.stream", "viz.write.stream"})
        EXPECT_TRUE(std::count(points.begin(), points.end(), p))
            << "missing point " << p;
}

// --- rate-limited warnings -----------------------------------------------------

TEST(WarnLimited, StopsAfterLimitAndCounts)
{
    FaultGuard guard;
    vs::setWarnLimit(3);
    for (int i = 0; i < 10; ++i)
        vs::warnLimited("test.key", "WarnLimited", "warning ", i);
    EXPECT_EQ(vs::warnEmittedCount("test.key"), 3u);
    EXPECT_EQ(vs::warnSuppressedCount("test.key"), 7u);

    // Independent keys have independent budgets.
    vs::warnLimited("test.other", "WarnLimited", "other");
    EXPECT_EQ(vs::warnEmittedCount("test.other"), 1u);
    EXPECT_EQ(vs::warnSuppressedCount("test.other"), 0u);
}

// --- injection points through public entry points ------------------------------

TEST(InjectionPoints, TraceReadStream)
{
    FaultGuard guard;
    vs::FaultInjector::global().arm("trace.read.stream");
    std::istringstream in(serialized(vt::makeFigure1Trace()));
    auto result = vt::readTrace(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
    EXPECT_FALSE(result.error().context().empty());
}

TEST(InjectionPoints, TraceParseBudget)
{
    FaultGuard guard;
    vs::FaultInjector::global().arm("trace.parse.budget");
    std::istringstream in(serialized(vt::makeFigure1Trace()));
    auto result = vt::readTrace(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Budget);
}

TEST(InjectionPoints, TraceWriteStream)
{
    FaultGuard guard;
    vs::FaultInjector::global().arm("trace.write.stream");
    auto result = vt::writeTraceFile(vt::makeFigure1Trace(),
                                     tempDir() + "/inject.viva");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
}

TEST(InjectionPoints, PajeReadStream)
{
    FaultGuard guard;
    std::ostringstream paje;
    vt::writePajeTrace(vt::makeFigure1Trace(), paje);

    vs::FaultInjector::global().arm("paje.read.stream");
    std::istringstream in(paje.str());
    auto result = vt::readPajeTrace(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
}

TEST(InjectionPoints, VizWriteStream)
{
    FaultGuard guard;
    vs::FaultInjector::global().arm("viz.write.stream");
    vap::Session session(vt::makeFigure1Trace());
    auto result = session.renderSvg(tempDir() + "/inject.svg");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
}

TEST(InjectionPoints, LayoutForceNanIsQuarantined)
{
    FaultGuard guard;
    vl::LayoutGraph graph;
    auto a = graph.addNode(1, {0.0, 0.0}, 1.0);
    graph.addNode(2, {30.0, 0.0}, 1.0);
    graph.addEdge(a, graph.findKey(2), 1.0);
    vl::ForceLayout layout(graph);

    vs::FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = 11;
    vs::FaultInjector::global().arm("layout.force.nan", spec);
    for (int i = 0; i < 20; ++i)
        layout.step();

    EXPECT_GT(layout.quarantineCount(), 0u);
    for (const vl::Node &n : graph.rawNodes()) {
        EXPECT_TRUE(std::isfinite(n.position.x));
        EXPECT_TRUE(std::isfinite(n.position.y));
        EXPECT_TRUE(std::isfinite(n.velocity.x));
        EXPECT_TRUE(std::isfinite(n.velocity.y));
    }
    EXPECT_GT(vs::warnEmittedCount("layout.nonfinite"), 0u);

    // Disarmed, the layout recovers and keeps stepping cleanly.
    vs::FaultInjector::global().disarmAll();
    std::size_t before = layout.quarantineCount();
    for (int i = 0; i < 20; ++i)
        layout.step();
    EXPECT_EQ(layout.quarantineCount(), before);
}

// --- parse budgets -------------------------------------------------------------

TEST(ParseBudget, LineLengthBound)
{
    vt::ParseBudget budget;
    budget.maxLineLength = 64;
    std::string input = "viva-trace 1\ncontainer 1 - host " +
                        std::string(200, 'x') + "\n";
    std::istringstream in(input);
    auto result = vt::readTrace(in, budget);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Budget);
}

TEST(ParseBudget, ContainerBound)
{
    vt::ParseBudget budget;
    budget.maxContainers = 4;
    std::ostringstream input;
    input << "viva-trace 1\n";
    for (int i = 1; i <= 8; ++i)
        input << "container " << i << " - host h" << i << "\n";
    std::istringstream in(input.str());
    auto result = vt::readTrace(in, budget);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Budget);
}

TEST(ParseBudget, RecordBound)
{
    vt::ParseBudget budget;
    budget.maxRecords = 5;
    std::ostringstream input;
    input << "viva-trace 1\ncontainer 1 - host h\n"
          << "metric 0 gauge - - m\n";
    for (int i = 0; i < 10; ++i)
        input << "p 1 0 " << i << " 1\n";
    std::istringstream in(input.str());
    auto result = vt::readTrace(in, budget);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Budget);
}

TEST(ParseBudget, PajeBudgetsApply)
{
    std::ostringstream paje;
    vt::writePajeTrace(vt::makeFigure1Trace(), paje);

    vt::ParseBudget tight;
    tight.maxRecords = 2;
    std::istringstream in(paje.str());
    auto result = vt::readPajeTrace(in, tight);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Budget);
}

TEST(ParseBudget, DefaultsAcceptRealTraces)
{
    std::istringstream in(serialized(vt::makeFigure1Trace()));
    auto result = vt::readTrace(in);
    ASSERT_TRUE(result.ok()) << result.error().toString();
}

// --- graceful degradation at the session level ---------------------------------

TEST(SessionFault, FailedLoadLeavesSessionUntouched)
{
    FaultGuard guard;
    vap::Session session(vt::makeFigure1Trace());
    ASSERT_TRUE(session.stabilizeLayout(50).value() > 0);
    std::uint64_t digest = session.stateDigest();

    auto missing = session.load(tempDir() + "/does_not_exist.viva");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code(), vs::Errc::Io);
    EXPECT_EQ(session.stateDigest(), digest);

    // A mid-file injected failure is also swallowed without mutation.
    std::string path = tempDir() + "/good.viva";
    ASSERT_TRUE(session.saveTrace(path).ok());
    vs::FaultInjector::global().arm("trace.read.stream");
    auto injected = session.load(path);
    ASSERT_FALSE(injected.ok());
    EXPECT_EQ(session.stateDigest(), digest);
    vs::FaultInjector::global().disarmAll();

    // And the session still works end-to-end afterwards.
    auto loaded = session.load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(session.trace().containerCount(),
              vt::makeFigure1Trace().containerCount());
}

TEST(SessionFault, LoadSwitchesTraceAndRebuildsEverything)
{
    vap::Session session(vt::makeFigure1Trace());
    std::string path = tempDir() + "/two_hosts.viva";
    {
        vt::Trace t;
        auto a = t.addContainer("a", vt::ContainerKind::Host, t.root());
        t.addContainer("b", vt::ContainerKind::Host, t.root());
        auto m = t.addMetric("load", "", vt::MetricNature::Gauge);
        t.variable(a, m).set(0.0, 1.0);
        t.variable(a, m).set(5.0, 0.0);
        ASSERT_TRUE(vt::writeTraceFile(t, path).ok());
    }
    auto loaded = session.load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(session.trace().containerCount(), 3u);
    EXPECT_EQ(session.cut().visibleCount(), 2u);
    EXPECT_EQ(session.layoutGraph().nodeCount(), 2u);
    EXPECT_DOUBLE_EQ(session.timeSlice().begin, 0.0);
    EXPECT_DOUBLE_EQ(session.timeSlice().end, 5.0);
    EXPECT_TRUE(session.auditInvariants().empty());
}

TEST(SessionFault, LoadCommandReportsStructuredErrors)
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    std::ostringstream out;
    EXPECT_FALSE(cli.execute("load /no/such/file.viva", out));
    EXPECT_NE(out.str().find("error: io:"), std::string::npos);

    std::string path = tempDir() + "/cmd.viva";
    ASSERT_TRUE(session.saveTrace(path).ok());
    std::ostringstream out2;
    EXPECT_TRUE(cli.execute("load " + path, out2));
    EXPECT_NE(out2.str().find("loaded"), std::string::npos);
}

TEST(SessionFault, RenderErrorsAreRecoverable)
{
    vap::Session session(vt::makeFigure1Trace());
    auto bad_dir = session.renderSvg("/no/such/dir/out.svg");
    ASSERT_FALSE(bad_dir.ok());
    EXPECT_EQ(bad_dir.error().code(), vs::Errc::Io);

    auto bad_metric = session.renderTreemap(tempDir() + "/t.svg",
                                            "no-such-metric");
    ASSERT_FALSE(bad_metric.ok());
    EXPECT_EQ(bad_metric.error().code(), vs::Errc::NotFound);

    auto bad_chart = session.renderChart(tempDir() + "/c.svg",
                                         "no-such-metric");
    ASSERT_FALSE(bad_chart.ok());
    EXPECT_EQ(bad_chart.error().code(), vs::Errc::NotFound);

    auto bad_animate = session.animate(0, tempDir());
    ASSERT_FALSE(bad_animate.ok());
    EXPECT_EQ(bad_animate.error().code(), vs::Errc::Invalid);

    // The session still renders fine after all those failures.
    auto good = session.renderSvg(tempDir() + "/after_errors.svg");
    EXPECT_TRUE(good.ok()) << good.error().toString();
}

// --- observability x fault injection ----------------------------------------
//
// Every armed injection point must leave a visible trail in the metrics
// registry: the generic `fault.fired.<point>` counter plus the error
// counter of the subsystem the fault surfaced through -- and the
// `stats` export must stay well-formed while it happens.

namespace
{

namespace obs = viva::support::obs;

std::uint64_t
counterNow(const std::string &name)
{
    obs::Registry &reg = obs::Registry::global();
    return reg.counterValue(reg.counter(name));
}

/** `stats --json` through a throwaway session; sanity-checked. */
std::string
statsJson()
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("stats --json", out));
    return out.str();
}

/**
 * Arm `point`, run `driver`, and assert the fired counter and the
 * subsystem error counter `errorCounter` both advanced and the JSON
 * export still opens with the schema tag and closes as one object.
 */
template <typename Driver>
void
expectObservedFault(const std::string &point,
                    const std::string &errorCounter, Driver &&driver)
{
    FaultGuard guard;
    std::uint64_t fired_before = counterNow("fault.fired." + point);
    std::uint64_t errors_before = counterNow(errorCounter);

    vs::FaultInjector::global().arm(point);
    driver();

    EXPECT_GT(counterNow("fault.fired." + point), fired_before)
        << point;
    EXPECT_GT(counterNow(errorCounter), errors_before) << errorCounter;

    vs::FaultInjector::global().disarmAll();
    const std::string json = statsJson();
    EXPECT_EQ(json.rfind("{\n  \"schema\": \"viva-obs-1\"", 0), 0u);
    EXPECT_EQ(json.substr(json.size() - 2), "}\n");
    EXPECT_NE(json.find("\"fault.fired." + point + "\""),
              std::string::npos);
}

} // namespace

TEST(ObservedFaults, TraceReadStream)
{
    expectObservedFault("trace.read.stream", "trace.read.errors", [] {
        std::istringstream in(serialized(vt::makeFigure1Trace()));
        EXPECT_FALSE(vt::readTrace(in).ok());
    });
}

TEST(ObservedFaults, TraceParseBudget)
{
    expectObservedFault("trace.parse.budget", "trace.read.errors", [] {
        std::istringstream in(serialized(vt::makeFigure1Trace()));
        EXPECT_FALSE(vt::readTrace(in).ok());
    });
}

TEST(ObservedFaults, TraceWriteStream)
{
    expectObservedFault("trace.write.stream", "trace.write.errors", [] {
        EXPECT_FALSE(vt::writeTraceFile(vt::makeFigure1Trace(),
                                        tempDir() + "/obs_inject.viva")
                         .ok());
    });
}

TEST(ObservedFaults, PajeReadStream)
{
    expectObservedFault("paje.read.stream", "paje.read.errors", [] {
        std::ostringstream paje;
        vt::writePajeTrace(vt::makeFigure1Trace(), paje);
        std::istringstream in(paje.str());
        EXPECT_FALSE(vt::readPajeTrace(in).ok());
    });
}

TEST(ObservedFaults, VizWriteStream)
{
    expectObservedFault("viz.write.stream", "viz.write.errors", [] {
        vap::Session session(vt::makeFigure1Trace());
        EXPECT_FALSE(
            session.renderSvg(tempDir() + "/obs_inject.svg").ok());
    });
}

TEST(ObservedFaults, LayoutForceNan)
{
    expectObservedFault("layout.force.nan", "layout.quarantine", [] {
        vl::LayoutGraph graph;
        auto a = graph.addNode(1, {0.0, 0.0}, 1.0);
        graph.addNode(2, {30.0, 0.0}, 1.0);
        graph.addEdge(a, graph.findKey(2), 1.0);
        vl::ForceLayout layout(graph);
        vs::FaultSpec spec;
        spec.probability = 0.5;
        spec.seed = 11;
        vs::FaultInjector::global().arm("layout.force.nan", spec);
        for (int i = 0; i < 20; ++i)
            layout.step();
        EXPECT_GT(layout.quarantineCount(), 0u);
    });
}
