/**
 * @file
 * Tests for the observability layer: the injectable clock, the metrics
 * registry (counters, gauges, fixed-bucket latency histograms and
 * their deterministic fold), the ScopedPhase RAII timer measured
 * exactly with a FakeClock, the `stats` interpreter command, and the
 * cross-thread-count determinism claim: under a frozen FakeClock the
 * `stats --json` export is byte-identical at 1, 2 and 8 worker
 * threads. Also the satellite: warnLimited() budgets surfaced through
 * the registry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/commands.hh"
#include "app/session.hh"
#include "support/clock.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/threadpool.hh"
#include "trace/builder.hh"

namespace obs = viva::support::obs;
namespace vap = viva::app;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

/** RAII: leave the global registry armed and warn budgets clean. */
struct ObsGuard
{
    ObsGuard()
    {
        obs::Registry::global().setEnabled(true);
        vs::resetWarnLimits();
    }
    ~ObsGuard()
    {
        obs::Registry::global().setEnabled(true);
        vs::resetWarnLimits();
        vs::setWarnLimit(5);
        vs::setQuiet(false);
    }
};

/** A small two-level trace: 4 sites x 8 hosts with one metric pair. */
vt::Trace
smallTrace()
{
    vt::TraceBuilder b;
    for (int s = 0; s < 4; ++s) {
        b.beginGroup("site" + std::to_string(s),
                     vt::ContainerKind::Site);
        for (int h = 0; h < 8; ++h) {
            vt::ContainerId host =
                b.host("s" + std::to_string(s) + "h" + std::to_string(h));
            for (int t = 0; t <= 4; ++t) {
                b.set(host, "power", double(t), 100.0);
                b.set(host, "power_used", double(t),
                      double((s + h + t) % 3) * 25.0);
            }
        }
        b.endGroup();
    }
    return b.take();
}

} // namespace

// --- the injectable clock ---------------------------------------------------

TEST(Clock, SteadyClockIsMonotonic)
{
    vs::SteadyClock steady;
    std::uint64_t a = steady.nowNanos();
    std::uint64_t b = steady.nowNanos();
    EXPECT_LE(a, b);
}

TEST(Clock, FakeClockIsFullyScripted)
{
    vs::FakeClock fake(100);
    EXPECT_EQ(fake.nowNanos(), 100u);
    EXPECT_EQ(fake.nowNanos(), 100u) << "tick defaults to frozen";
    fake.advance(50);
    EXPECT_EQ(fake.nowNanos(), 150u);
    fake.set(7);
    EXPECT_EQ(fake.nowNanos(), 7u);
}

TEST(Clock, FakeClockAutoTickAdvancesPerRead)
{
    vs::FakeClock fake(0, 10);
    EXPECT_EQ(fake.nowNanos(), 0u);
    EXPECT_EQ(fake.nowNanos(), 10u);
    EXPECT_EQ(fake.nowNanos(), 20u);
}

TEST(Clock, OverrideInstallsAndRestores)
{
    vs::Clock &before = vs::clock();
    {
        vs::FakeClock fake(42);
        vs::ClockOverride guard(fake);
        EXPECT_EQ(vs::clock().nowNanos(), 42u);
    }
    EXPECT_EQ(&vs::clock(), &before);
}

// --- registry units ---------------------------------------------------------

TEST(ObsRegistry, CounterAddsAndFolds)
{
    obs::Registry reg;
    obs::CounterId c = reg.counter("t.counter");
    EXPECT_EQ(reg.counterValue(c), 0u);
    reg.add(c);
    reg.add(c, 41);
    EXPECT_EQ(reg.counterValue(c), 42u);
}

TEST(ObsRegistry, SameNameYieldsSameHandle)
{
    obs::Registry reg;
    EXPECT_EQ(reg.counter("t.same"), reg.counter("t.same"));
    EXPECT_EQ(reg.gauge("t.same.g"), reg.gauge("t.same.g"));
    EXPECT_EQ(reg.histogram("t.same.h"), reg.histogram("t.same.h"));
}

TEST(ObsRegistry, GaugeHoldsTheLastLevel)
{
    obs::Registry reg;
    obs::GaugeId g = reg.gauge("t.gauge");
    reg.set(g, 123);
    reg.set(g, -7);
    EXPECT_EQ(reg.gaugeValue(g), -7);
}

TEST(ObsRegistry, HistogramCountsSumsAndBuckets)
{
    obs::Registry reg;
    obs::HistogramId h = reg.histogram("t.hist");
    reg.record(h, 100);   // <= 256: bucket 0
    reg.record(h, 300);   // <= 1024: bucket 1
    reg.record(h, 2000);  // <= 4096: bucket 2
    obs::HistogramValue v = reg.histogramValue(h);
    EXPECT_EQ(v.count, 3u);
    EXPECT_EQ(v.sumNanos, 2400u);
    EXPECT_EQ(v.meanNanos(), 800u);
    EXPECT_EQ(v.buckets[0], 1u);
    EXPECT_EQ(v.buckets[1], 1u);
    EXPECT_EQ(v.buckets[2], 1u);
}

TEST(ObsRegistry, HistogramOverflowLandsInTheLastBucket)
{
    obs::Registry reg;
    obs::HistogramId h = reg.histogram("t.hist.over");
    const auto &bounds = obs::histogramBounds();
    reg.record(h, bounds.back() + 1);
    obs::HistogramValue v = reg.histogramValue(h);
    EXPECT_EQ(v.buckets[obs::kHistogramBuckets - 1], 1u);
}

TEST(ObsRegistry, BoundsAreStrictlyAscending)
{
    const auto &bounds = obs::histogramBounds();
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsHandles)
{
    obs::Registry reg;
    obs::CounterId c = reg.counter("t.reset.c");
    obs::HistogramId h = reg.histogram("t.reset.h");
    reg.add(c, 5);
    reg.record(h, 100);
    reg.reset();
    EXPECT_EQ(reg.counterValue(c), 0u);
    EXPECT_EQ(reg.histogramValue(h).count, 0u);
    reg.add(c);  // the old handle still lands in the same slot
    EXPECT_EQ(reg.counterValue(c), 1u);
}

TEST(ObsRegistry, ResetByPrefixIsSelective)
{
    obs::Registry reg;
    obs::CounterId a = reg.counter("left.a");
    obs::CounterId b = reg.counter("right.b");
    reg.add(a, 3);
    reg.add(b, 4);
    reg.reset("left.");
    EXPECT_EQ(reg.counterValue(a), 0u);
    EXPECT_EQ(reg.counterValue(b), 4u);
}

TEST(ObsRegistry, ExhaustedCapacityDropsInsteadOfAborting)
{
    obs::Registry reg;
    obs::CounterId last = obs::kNoCounter;
    // Slot 0 is the built-in drop counter, so 1023 registrations fit.
    for (int i = 0; i < 1100; ++i)
        last = reg.counter("t.cap." + std::to_string(i));
    EXPECT_EQ(last, obs::kNoCounter);
    reg.add(last, 99);  // dropped, not crashed
    obs::CounterId dropped = reg.counter("obs.dropped_registrations");
    EXPECT_GT(reg.counterValue(dropped), 0u);
}

TEST(ObsRegistry, SnapshotIsSortedByName)
{
    obs::Registry reg;
    reg.counter("zz.last");
    reg.counter("aa.first");
    obs::StatsSnapshot snap = reg.snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

TEST(ObsRegistry, FoldSumsAcrossThreads)
{
    obs::Registry reg;
    obs::CounterId c = reg.counter("t.mt.counter");
    obs::HistogramId h = reg.histogram("t.mt.hist");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                reg.add(c);
                reg.record(h, 100);
            }
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(reg.counterValue(c),
              std::uint64_t(kThreads) * kPerThread);
    obs::HistogramValue v = reg.histogramValue(h);
    EXPECT_EQ(v.count, std::uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(v.sumNanos, std::uint64_t(kThreads) * kPerThread * 100);
}

TEST(ObsRegistry, GlobalSurvivesAPrivateRegistrysDeath)
{
    // A thread that touched a private registry must not corrupt the
    // global one after the private instance is destroyed (the
    // thread-local shard cache must not hand out the dead shard).
    obs::CounterId g = obs::Registry::global().counter("t.survivor");
    std::uint64_t before = obs::Registry::global().counterValue(g);
    {
        obs::Registry private_reg;
        obs::CounterId p = private_reg.counter("t.private");
        private_reg.add(p, 7);
        EXPECT_EQ(private_reg.counterValue(p), 7u);
    }
    obs::Registry::global().add(g);
    EXPECT_EQ(obs::Registry::global().counterValue(g), before + 1);
}

// --- ScopedPhase with a scripted clock --------------------------------------

TEST(ScopedPhase, MeasuresExactlyWithAFakeClock)
{
    ObsGuard guard;
    obs::Registry &reg = obs::Registry::global();
    obs::HistogramId h = reg.histogram("t.phase.exact");
    obs::HistogramValue before = reg.histogramValue(h);

    vs::FakeClock fake(1000);
    vs::ClockOverride clock_guard(fake);
    {
        obs::ScopedPhase phase(h);
        fake.advance(12345);
    }
    obs::HistogramValue after = reg.histogramValue(h);
    EXPECT_EQ(after.count, before.count + 1);
    EXPECT_EQ(after.sumNanos, before.sumNanos + 12345);
}

TEST(ScopedPhase, AutoTickCountsTheTwoClockReads)
{
    ObsGuard guard;
    obs::Registry &reg = obs::Registry::global();
    obs::HistogramId h = reg.histogram("t.phase.tick");
    obs::HistogramValue before = reg.histogramValue(h);

    vs::FakeClock fake(0, 1000);
    vs::ClockOverride clock_guard(fake);
    {
        obs::ScopedPhase phase(h);
    }
    // Construction reads 0 (now -> 1000), destruction reads 1000.
    obs::HistogramValue after = reg.histogramValue(h);
    EXPECT_EQ(after.sumNanos, before.sumNanos + 1000);
}

TEST(ScopedPhase, DisarmedRecordsNothingButCountersKeepCounting)
{
    ObsGuard guard;
    obs::Registry &reg = obs::Registry::global();
    obs::HistogramId h = reg.histogram("t.phase.disarmed");
    obs::CounterId c = reg.counter("t.phase.disarmed.c");
    obs::HistogramValue before = reg.histogramValue(h);
    std::uint64_t counter_before = reg.counterValue(c);

    vs::FakeClock fake(0, 1000);
    vs::ClockOverride clock_guard(fake);
    reg.setEnabled(false);
    {
        obs::ScopedPhase phase(h);
        reg.add(c);
    }
    reg.setEnabled(true);
    EXPECT_EQ(reg.histogramValue(h).count, before.count);
    EXPECT_EQ(reg.counterValue(c), counter_before + 1);
    EXPECT_EQ(fake.nowNanos(), 0u) << "disarmed must not read the clock";
}

TEST(ScopedPhase, ArmedMidPhaseStillRecordsNothing)
{
    // Disarmed at entry means no begin timestamp exists; arming before
    // the destructor must not invent a bogus duration.
    ObsGuard guard;
    obs::Registry &reg = obs::Registry::global();
    obs::HistogramId h = reg.histogram("t.phase.midarm");
    obs::HistogramValue before = reg.histogramValue(h);
    reg.setEnabled(false);
    {
        obs::ScopedPhase phase(h);
        reg.setEnabled(true);
    }
    EXPECT_EQ(reg.histogramValue(h).count, before.count);
}

// --- warnLimited budgets through the registry (satellite) -------------------

TEST(ObsLogging, WarnBudgetsAreRegistryCounters)
{
    ObsGuard guard;
    vs::setQuiet(true);
    vs::setWarnLimit(2);
    for (int i = 0; i < 5; ++i)
        vs::warnLimited("obs_test.key", "obs_test", "warning ", i);

    EXPECT_EQ(vs::warnEmittedCount("obs_test.key"), 2u);
    EXPECT_EQ(vs::warnSuppressedCount("obs_test.key"), 3u);

    obs::Registry &reg = obs::Registry::global();
    EXPECT_EQ(reg.counterValue(
                  reg.counter("log.warn.emitted.obs_test.key")),
              2u);
    EXPECT_EQ(reg.counterValue(
                  reg.counter("log.warn.suppressed.obs_test.key")),
              3u);
}

TEST(ObsLogging, SuppressionShowsUpInStatsOutput)
{
    ObsGuard guard;
    vs::setQuiet(true);
    vs::setWarnLimit(1);
    for (int i = 0; i < 3; ++i)
        vs::warnLimited("obs_test.visible", "obs_test", "warning");

    vap::Session sess(smallTrace());
    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    ASSERT_TRUE(interp.execute("stats", out));
    EXPECT_NE(out.str().find("log.warn.suppressed.obs_test.visible"),
              std::string::npos)
        << out.str();
}

TEST(ObsLogging, ResetWarnLimitsClearsOnlyLogCounters)
{
    ObsGuard guard;
    vs::setQuiet(true);
    vs::setWarnLimit(1);
    obs::Registry &reg = obs::Registry::global();
    obs::CounterId other = reg.counter("t.not.a.log.counter");
    std::uint64_t other_before = reg.counterValue(other);
    reg.add(other);
    vs::warnLimited("obs_test.reset", "obs_test", "warning");
    vs::resetWarnLimits();
    EXPECT_EQ(vs::warnEmittedCount("obs_test.reset"), 0u);
    EXPECT_EQ(reg.counterValue(other), other_before + 1);
}

// --- the stats command ------------------------------------------------------

TEST(StatsCommand, TableListsCountersGaugesAndPhases)
{
    ObsGuard guard;
    vap::Session sess(smallTrace());
    sess.stepLayout(3).value();
    (void)sess.view();
    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    ASSERT_TRUE(interp.execute("stats", out));
    const std::string text = out.str();
    EXPECT_NE(text.find("layout.force.iterations"), std::string::npos);
    EXPECT_NE(text.find("session.visible_nodes"), std::string::npos);
    EXPECT_NE(text.find("layout.force.step"), std::string::npos);
}

TEST(StatsCommand, JsonCarriesTheSchemaTag)
{
    ObsGuard guard;
    vap::Session sess(smallTrace());
    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    ASSERT_TRUE(interp.execute("stats --json", out));
    EXPECT_EQ(out.str().rfind("{\n  \"schema\": \"viva-obs-1\"", 0), 0u)
        << out.str().substr(0, 80);
}

TEST(StatsCommand, ResetZeroesTheRegistry)
{
    ObsGuard guard;
    vap::Session sess(smallTrace());
    sess.stepLayout(2).value();
    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    ASSERT_TRUE(interp.execute("stats reset", out));
    obs::Registry &reg = obs::Registry::global();
    EXPECT_EQ(reg.counterValue(reg.counter("layout.force.iterations")),
              0u);
}

TEST(StatsCommand, UnknownOptionFails)
{
    vap::Session sess(smallTrace());
    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    EXPECT_FALSE(interp.execute("stats --bogus", out));
}

TEST(StatsCommand, SessionSnapshotMatchesTheGlobalRegistry)
{
    ObsGuard guard;
    vap::Session sess(smallTrace());
    sess.stepLayout(1).value();
    obs::StatsSnapshot via_session = sess.observability();
    obs::StatsSnapshot via_registry = obs::Registry::global().snapshot();
    ASSERT_EQ(via_session.counters.size(), via_registry.counters.size());
    for (std::size_t i = 0; i < via_session.counters.size(); ++i)
        EXPECT_EQ(via_session.counters[i].name,
                  via_registry.counters[i].name);
}

// --- determinism across thread counts ---------------------------------------

namespace
{

/**
 * The full workload -> `stats --json` string under a frozen FakeClock,
 * with `threads` layout/aggregation workers. Frozen time makes every
 * recorded duration 0 ns, so the export depends only on WHAT ran, and
 * the integer fold makes it independent of scheduling.
 */
std::string
statsJsonWithThreads(std::size_t threads)
{
    vs::FakeClock frozen(0);
    vs::ClockOverride clock_guard(frozen);
    obs::Registry::global().reset();

    vap::Session sess(smallTrace());
    sess.setThreads(threads);
    sess.aggregateToDepth(1);
    (void)sess.view();
    sess.resetAggregation();
    (void)sess.view(true);
    sess.stepLayout(10).value();

    vap::CommandInterpreter interp(sess);
    std::ostringstream out;
    EXPECT_TRUE(interp.execute("stats --json", out));
    return out.str();
}

} // namespace

TEST(ObsDeterminism, StatsJsonIsByteIdenticalAcrossThreadCounts)
{
    ObsGuard guard;
    // Warm-up run so every metric name is registered before the
    // measured runs (registration is append-only; a name first seen in
    // run 2 would change the exported set).
    (void)statsJsonWithThreads(2);

    const std::string at1 = statsJsonWithThreads(1);
    const std::string at2 = statsJsonWithThreads(2);
    const std::string at8 = statsJsonWithThreads(8);
    EXPECT_EQ(at1, at2);
    EXPECT_EQ(at1, at8);
}

TEST(ObsDeterminism, StatsJsonIsByteIdenticalAcrossRepeatedRuns)
{
    ObsGuard guard;
    (void)statsJsonWithThreads(4);
    EXPECT_EQ(statsJsonWithThreads(4), statsJsonWithThreads(4));
}
