/**
 * @file
 * Tests for the viva-check lexer and engine. The lexer section covers
 * the lexical blind spots the tool exists to fix (raw strings, line
 * splices, digit separators); the rule sections drive each flow rule
 * against good/bad/waived fixture triples under virtual repo paths so
 * rule scoping is under test too; the JSON section pins byte
 * stability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/check.hh"
#include "tools/check_lexer.hh"

namespace vc = viva::check;

namespace
{

/** Load one fixture file from the source tree. */
std::string
fixture(const std::string &name)
{
    std::string path = std::string(VIVA_CHECK_FIXTURES) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The mini API header all flow fixtures call into. */
vc::FileInput
apiHeader()
{
    return {"src/demo/api.hh", fixture("expected_api.hh")};
}

/** Run the engine (no manifest) on fixtures at virtual paths. */
std::vector<vc::Finding>
checkFiles(std::vector<vc::FileInput> files)
{
    return vc::runCheck(files, vc::Options{});
}

std::size_t
countRule(const std::vector<vc::Finding> &findings,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const vc::Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

/** Tokens of `text` with comments dropped. */
std::vector<vc::Token>
codeTokens(const std::string &text)
{
    std::vector<vc::Token> out;
    for (vc::Token &t : vc::lex(text))
        if (t.kind != vc::Tok::Comment)
            out.push_back(std::move(t));
    return out;
}

} // namespace

// --- lexer ----------------------------------------------------------------

TEST(CheckLexer, RawStringIsOneToken)
{
    auto toks = codeTokens(
        "auto s = R\"(no // comment \"inside\")\";\nint x;");
    ASSERT_GE(toks.size(), 7u);
    EXPECT_EQ(toks[3].kind, vc::Tok::RawString);
    EXPECT_EQ(toks[3].text, "no // comment \"inside\"");
    // The code after the literal is still lexed normally.
    EXPECT_EQ(toks[5].text, "int");
    EXPECT_EQ(toks[5].line, 2u);
}

TEST(CheckLexer, RawStringWithDelimiterAndPrefix)
{
    auto toks = codeTokens("auto s = u8R\"xy(a)\"b)xy\";");
    ASSERT_GE(toks.size(), 4u);
    EXPECT_EQ(toks[3].kind, vc::Tok::RawString);
    EXPECT_EQ(toks[3].text, "a)\"b");
}

TEST(CheckLexer, LineSpliceInsideIdentifier)
{
    auto toks = codeTokens("ab\\\ncd = 1;");
    ASSERT_GE(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, vc::Tok::Identifier);
    EXPECT_EQ(toks[0].text, "abcd");
}

TEST(CheckLexer, SplicedLineCommentSwallowsNextLine)
{
    // The backslash-newline continues the // comment, so `hidden` is
    // comment text, not code -- the old line scanner got this wrong.
    auto toks =
        codeTokens("// note \\\nhidden();\nint visible;");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[0].line, 3u);
    EXPECT_EQ(toks[1].text, "visible");
}

TEST(CheckLexer, DigitSeparatorIsNotACharLiteral)
{
    auto toks = codeTokens("int x = 1'000'000; char c = 'q';");
    ASSERT_GE(toks.size(), 10u);
    EXPECT_EQ(toks[3].kind, vc::Tok::Number);
    EXPECT_EQ(toks[3].text, "1'000'000");
    EXPECT_EQ(toks[8].kind, vc::Tok::CharLit);
    EXPECT_EQ(toks[8].text, "q");
}

TEST(CheckLexer, NoDigraphSurprises)
{
    // `<:` must stay two punctuators (template-arg then scope), not a
    // digraph '['.
    auto toks = codeTokens("set<::viva::Id> s;");
    ASSERT_GE(toks.size(), 3u);
    EXPECT_EQ(toks[1].text, "<");
    EXPECT_EQ(toks[2].text, "::");
}

TEST(CheckLexer, EscapedQuoteInsideString)
{
    auto toks = codeTokens("auto s = \"a\\\"b\"; int y;");
    ASSERT_GE(toks.size(), 5u);
    EXPECT_EQ(toks[3].kind, vc::Tok::String);
    EXPECT_EQ(toks[3].text, "a\\\"b");
    EXPECT_EQ(toks[5].text, "int");
}

TEST(CheckLexer, PreprocessorLineIsFlagged)
{
    auto toks = codeTokens("#define FOO bar()\nint x;");
    ASSERT_GE(toks.size(), 7u);
    EXPECT_TRUE(toks[0].inPreproc);   // '#'
    EXPECT_TRUE(toks[3].inPreproc);   // 'bar'
    EXPECT_EQ(toks[6].text, "int");
    EXPECT_FALSE(toks[6].inPreproc);  // next line leaves the directive
}

TEST(CheckLexer, StripBlanksRawStringsAndKeepsLines)
{
    const std::string in =
        "auto s = R\"(line1\nline2 // not a comment)\";\nint x; // gone\n";
    const std::string out = vc::stripCommentsAndStrings(in);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              std::count(in.begin(), in.end(), '\n'));
    EXPECT_EQ(out.find("line2"), std::string::npos);
    EXPECT_EQ(out.find("// gone"), std::string::npos);
    EXPECT_NE(out.find("int x;"), std::string::npos);
}

// --- signature pre-pass ---------------------------------------------------

TEST(CheckHarvest, ExpectedAndErrorReturnsFromHeader)
{
    auto callees = vc::harvestExpectedCallees({apiHeader()});
    EXPECT_TRUE(callees.count("load"));
    EXPECT_TRUE(callees.count("save"));
    EXPECT_TRUE(callees.count("render"));
    EXPECT_TRUE(callees.count("annotate"));
    // The forward-declared template itself is not a callee.
    EXPECT_FALSE(callees.count("Expected"));
}

// --- unchecked-expected ---------------------------------------------------

TEST(CheckUnchecked, FiresOnDiscardedResults)
{
    auto findings = checkFiles(
        {apiHeader(), {"bench/demo.cc", fixture("unchecked_bad.cc")}});
    EXPECT_EQ(countRule(findings, "unchecked-expected"), 3u);
    // The deliberately-discarded Session::load result is caught.
    bool load_caught = false;
    for (const auto &f : findings)
        if (f.rule == "unchecked-expected" && f.line == 8)
            load_caught = true;
    EXPECT_TRUE(load_caught);
}

TEST(CheckUnchecked, CleanWhenBoundTestedOrPassedOn)
{
    auto findings = checkFiles(
        {apiHeader(),
         {"bench/demo.cc", fixture("unchecked_good.cc")}});
    EXPECT_EQ(countRule(findings, "unchecked-expected"), 0u);
}

TEST(CheckUnchecked, WaivedWithRationale)
{
    auto findings = checkFiles(
        {apiHeader(),
         {"bench/demo.cc", fixture("unchecked_waived.cc")}});
    EXPECT_EQ(countRule(findings, "unchecked-expected"), 0u);
    EXPECT_EQ(countRule(findings, "waiver"), 0u);
}

TEST(CheckUnchecked, WaiverWithoutRationaleIsAFinding)
{
    auto findings = checkFiles(
        {apiHeader(),
         {"bench/demo.cc", fixture("unchecked_norationale.cc")}});
    EXPECT_EQ(countRule(findings, "waiver"), 1u);
    EXPECT_EQ(countRule(findings, "unchecked-expected"), 1u);
}

// --- context-on-propagate -------------------------------------------------

TEST(CheckContext, FiresOnBarePropagation)
{
    auto findings = checkFiles(
        {apiHeader(),
         {"src/app/demo.cc", fixture("context_bad.cc")}});
    EXPECT_EQ(countRule(findings, "context-on-propagate"), 2u);
}

TEST(CheckContext, OutOfScopeOutsideSrc)
{
    auto findings = checkFiles(
        {apiHeader(), {"bench/demo.cc", fixture("context_bad.cc")}});
    EXPECT_EQ(countRule(findings, "context-on-propagate"), 0u);
}

TEST(CheckContext, CleanWithContextWrap)
{
    auto findings = checkFiles(
        {apiHeader(),
         {"src/app/demo.cc", fixture("context_good.cc")}});
    EXPECT_EQ(countRule(findings, "context-on-propagate"), 0u);
}

TEST(CheckContext, WaivedShim)
{
    auto findings = checkFiles(
        {apiHeader(),
         {"src/app/demo.cc", fixture("context_waived.cc")}});
    EXPECT_EQ(countRule(findings, "context-on-propagate"), 0u);
}

// --- obs-phase-manifest ---------------------------------------------------

namespace
{

std::vector<vc::Finding>
checkWithManifest(std::vector<vc::FileInput> files,
                  const std::string &manifest)
{
    vc::Options options;
    options.manifestContent = manifest;
    options.haveManifest = true;
    return vc::runCheck(files, options);
}

} // namespace

TEST(CheckObsManifest, CleanWhenInSync)
{
    auto findings = checkWithManifest(
        {{"src/trace/demo.cc", fixture("obs_phase.cc")}},
        "# header\ndemo.phase\n");
    EXPECT_EQ(countRule(findings, "obs-phase-manifest"), 0u);
}

TEST(CheckObsManifest, FiresOnUnlistedPhase)
{
    auto findings = checkWithManifest(
        {{"src/trace/demo.cc", fixture("obs_phase.cc")}}, "");
    ASSERT_EQ(countRule(findings, "obs-phase-manifest"), 1u);
    EXPECT_EQ(findings[0].file, "src/trace/demo.cc");
}

TEST(CheckObsManifest, FiresOnStaleManifestEntry)
{
    auto findings = checkWithManifest(
        {{"src/trace/demo.cc", fixture("obs_phase.cc")}},
        "demo.phase\nstale.entry\n");
    ASSERT_EQ(countRule(findings, "obs-phase-manifest"), 1u);
    EXPECT_EQ(findings[0].file, "tools/obs_manifest.txt");
    EXPECT_EQ(findings[0].line, 2u);
}

TEST(CheckObsManifest, RegistrationsOutsideSrcIgnored)
{
    auto findings = checkWithManifest(
        {{"tests/demo.cc", fixture("obs_phase.cc")}}, "");
    EXPECT_EQ(countRule(findings, "obs-phase-manifest"), 0u);
}

TEST(CheckObsManifest, WaivedScratchPhase)
{
    auto findings = checkWithManifest(
        {{"src/trace/demo.cc", fixture("obs_phase_waived.cc")}}, "");
    EXPECT_EQ(countRule(findings, "obs-phase-manifest"), 0u);
}

TEST(CheckObsManifest, HarvestIsSortedAndUnique)
{
    auto names = vc::harvestPhaseNames(
        {{"src/a.cc", fixture("obs_phase.cc")},
         {"src/b.cc", fixture("obs_phase.cc")}});
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "demo.phase");
}

// --- include-self-sufficiency ---------------------------------------------

namespace
{

std::vector<vc::FileInput>
selfSuffTree(const std::string &panel_fixture)
{
    return {{"src/core/defs.hh", fixture("selfsuff_defs.hh")},
            {"src/core/mid.hh", fixture("selfsuff_mid.hh")},
            {"src/ui/panel.hh", fixture(panel_fixture)}};
}

} // namespace

TEST(CheckSelfSuff, FiresOnUnreachableType)
{
    auto findings = checkFiles(selfSuffTree("selfsuff_bad.hh"));
    ASSERT_EQ(countRule(findings, "include-self-sufficiency"), 1u);
    EXPECT_EQ(findings[0].file, "src/ui/panel.hh");
    EXPECT_NE(findings[0].message.find("Widget"), std::string::npos);
}

TEST(CheckSelfSuff, CleanWithDirectInclude)
{
    auto findings =
        checkFiles(selfSuffTree("selfsuff_good_include.hh"));
    EXPECT_EQ(countRule(findings, "include-self-sufficiency"), 0u);
}

TEST(CheckSelfSuff, CleanWithForwardDeclaration)
{
    auto findings = checkFiles(selfSuffTree("selfsuff_good_fwd.hh"));
    EXPECT_EQ(countRule(findings, "include-self-sufficiency"), 0u);
}

TEST(CheckSelfSuff, CleanThroughTransitiveInclude)
{
    auto findings =
        checkFiles(selfSuffTree("selfsuff_good_transitive.hh"));
    EXPECT_EQ(countRule(findings, "include-self-sufficiency"), 0u);
}

TEST(CheckSelfSuff, WaivedReference)
{
    auto findings = checkFiles(selfSuffTree("selfsuff_waived.hh"));
    EXPECT_EQ(countRule(findings, "include-self-sufficiency"), 0u);
}

TEST(CheckSelfSuff, EnumMembersAreNotTypeReferences)
{
    auto files = selfSuffTree("selfsuff_good_include.hh");
    files.push_back(
        {"src/ui/kinds.hh", fixture("selfsuff_enum_member.hh")});
    auto findings = checkFiles(files);
    EXPECT_EQ(countRule(findings, "include-self-sufficiency"), 0u);
}

// --- output formats -------------------------------------------------------

TEST(CheckOutput, FindingFormat)
{
    vc::Finding f{"src/a.cc", 12, "unchecked-expected", "msg"};
    EXPECT_EQ(vc::formatFinding(f),
              "src/a.cc:12: [unchecked-expected] msg");
}

TEST(CheckOutput, JsonIsByteStableAcrossRuns)
{
    std::vector<vc::FileInput> files = {
        apiHeader(), {"bench/demo.cc", fixture("unchecked_bad.cc")}};
    auto run1 = vc::runCheck(files, vc::Options{});
    auto run2 = vc::runCheck(files, vc::Options{});
    EXPECT_EQ(vc::formatJson(files.size(), run1),
              vc::formatJson(files.size(), run2));
}

TEST(CheckOutput, JsonShapeAndEscaping)
{
    std::vector<vc::Finding> findings = {
        {"src/a.cc", 3, "waiver", "say \"why\"\n"}};
    const std::string doc = vc::formatJson(2, findings);
    EXPECT_NE(doc.find("\"schema\": \"viva-check-1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"files\": 2"), std::string::npos);
    EXPECT_NE(doc.find("say \\\"why\\\"\\n"), std::string::npos);
    EXPECT_EQ(vc::formatJson(0, {}).find("\"findings\": []"),
              vc::formatJson(0, {}).find("\"findings\": []"));
}

TEST(CheckOutput, EmptyFindingsJson)
{
    const std::string doc = vc::formatJson(0, {});
    EXPECT_NE(doc.find("\"findings\": []"), std::string::npos);
}

TEST(CheckJobs, FindingsIdenticalAcrossThreadCounts)
{
    const std::vector<vc::FileInput> files = {
        apiHeader(),
        {"src/demo/a.cc", fixture("unchecked_bad.cc")},
        {"src/demo/b.cc", fixture("context_bad.cc")},
        {"src/demo/bad.hh", fixture("selfsuff_bad.hh")},
        {"src/demo/defs.hh", fixture("selfsuff_defs.hh")},
    };
    vc::Options serialOpts;
    serialOpts.jobs = 1;
    vc::Options threadedOpts;
    threadedOpts.jobs = 4;
    const std::vector<vc::Finding> serial =
        vc::runCheck(files, serialOpts);
    const std::vector<vc::Finding> threaded =
        vc::runCheck(files, threadedOpts);
    ASSERT_EQ(serial.size(), threaded.size());
    ASSERT_GT(serial.size(), 0u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(vc::formatFinding(serial[i]),
                  vc::formatFinding(threaded[i]));
    }
}
