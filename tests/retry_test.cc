/**
 * @file
 * Tests for the bounded-backoff retry layer: the transient
 * classification (only Errc::Io), the deterministic jittered backoff
 * arithmetic, the retryWithBackoff loop under a FakeClock, the
 * retry.attempts / retry.exhausted metrics, and the session-level
 * integration (a transiently faulted trace read recovers on retry).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "app/session.hh"
#include "support/clock.hh"
#include "support/error.hh"
#include "support/fault.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/random.hh"
#include "support/retry.hh"
#include "trace/builder.hh"
#include "trace/io.hh"

namespace vap = viva::app;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

struct FaultGuard
{
    FaultGuard() { vs::FaultInjector::global().disarmAll(); }
    ~FaultGuard()
    {
        vs::FaultInjector::global().disarmAll();
        vs::resetWarnLimits();
    }
};

std::string
tempDir()
{
    auto dir = std::filesystem::temp_directory_path() / "viva_retry_test";
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::uint64_t
counterValue(const char *name)
{
    namespace obs = vs::obs;
    obs::StatsSnapshot snap = obs::Registry::global().snapshot();
    for (const obs::CounterValue &c : snap.counters)
        if (c.name == name)
            return c.value;
    return 0;
}

} // namespace

// --- classification ------------------------------------------------------------

TEST(Retry, OnlyIoErrorsAreTransient)
{
    EXPECT_TRUE(vs::transientError(
        VIVA_ERROR(vs::Errc::Io, "stream died")));
    for (vs::Errc code :
         {vs::Errc::Parse, vs::Errc::Budget, vs::Errc::NotFound,
          vs::Errc::Invalid, vs::Errc::Deadline}) {
        EXPECT_FALSE(vs::transientError(
            VIVA_ERROR(code, "not transient")))
            << vs::errcName(code);
    }
}

// --- backoff arithmetic --------------------------------------------------------

TEST(Retry, BackoffIsDeterministicPerSeed)
{
    vs::RetryPolicy policy;
    vs::Rng a(policy.seed), b(policy.seed);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(vs::backoffNanos(policy, i, a),
                  vs::backoffNanos(policy, i, b));
}

TEST(Retry, BackoffGrowsGeometricallyWithinJitterBounds)
{
    vs::RetryPolicy policy;
    policy.initialBackoffNanos = 1'000'000;
    policy.multiplier = 2.0;
    policy.maxBackoffNanos = 6'000'000;
    policy.jitterFraction = 0.25;
    vs::Rng rng(policy.seed);

    for (std::size_t i = 0; i < 8; ++i) {
        double base = 1'000'000.0;
        for (std::size_t k = 0; k < i; ++k)
            base *= 2.0;
        base = std::min(base, 6'000'000.0);
        std::uint64_t nanos = vs::backoffNanos(policy, i, rng);
        EXPECT_GE(double(nanos), base * 0.75 - 1.0) << "retry " << i;
        EXPECT_LE(double(nanos), base * 1.25 + 1.0) << "retry " << i;
    }
}

TEST(Retry, ZeroJitterIsExact)
{
    vs::RetryPolicy policy;
    policy.initialBackoffNanos = 500;
    policy.multiplier = 3.0;
    policy.maxBackoffNanos = 10'000;
    policy.jitterFraction = 0.0;
    vs::Rng rng(1);
    EXPECT_EQ(vs::backoffNanos(policy, 0, rng), 500u);
    EXPECT_EQ(vs::backoffNanos(policy, 1, rng), 1500u);
    EXPECT_EQ(vs::backoffNanos(policy, 2, rng), 4500u);
    EXPECT_EQ(vs::backoffNanos(policy, 3, rng), 10'000u);  // capped
}

// --- the retry loop ------------------------------------------------------------

TEST(Retry, TransientFailuresAreRetriedUntilSuccess)
{
    vs::FakeClock fake;
    vs::ClockOverride guard(fake);
    vs::RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.jitterFraction = 0.0;
    policy.initialBackoffNanos = 100;
    policy.multiplier = 2.0;

    std::size_t calls = 0;
    auto result = vs::retryWithBackoff(policy, [&] {
        ++calls;
        if (calls < 3)
            return vs::Expected<int>(
                VIVA_ERROR(vs::Errc::Io, "flaky"));
        return vs::Expected<int>(42);
    });
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, 42);
    EXPECT_EQ(calls, 3u);
    // Two sleeps: 100 then 200 virtual nanoseconds.
    EXPECT_EQ(fake.nowNanos(), 300u);
}

TEST(Retry, NonTransientFailuresReturnImmediately)
{
    vs::FakeClock fake;
    vs::ClockOverride guard(fake);
    vs::RetryPolicy policy;
    policy.maxAttempts = 5;

    std::size_t calls = 0;
    auto result = vs::retryWithBackoff(policy, [&] {
        ++calls;
        return vs::Expected<int>(
            VIVA_ERROR(vs::Errc::Parse, "bad bytes"));
    });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Parse);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(fake.nowNanos(), 0u) << "no backoff for non-transients";
}

TEST(Retry, ExhaustionReturnsTheLastErrorAndCountsIt)
{
    vs::FakeClock fake;
    vs::ClockOverride guard(fake);
    vs::RetryPolicy policy;
    policy.maxAttempts = 3;

    const std::uint64_t attempts_before = counterValue("retry.attempts");
    const std::uint64_t exhausted_before =
        counterValue("retry.exhausted");

    std::size_t calls = 0;
    auto result = vs::retryWithBackoff(policy, [&] {
        ++calls;
        return vs::Expected<int>(
            VIVA_ERROR(vs::Errc::Io, "still down"));
    });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(counterValue("retry.attempts"), attempts_before + 2);
    EXPECT_EQ(counterValue("retry.exhausted"), exhausted_before + 1);
}

TEST(Retry, SingleAttemptPolicyDisablesRetries)
{
    vs::RetryPolicy policy;
    policy.maxAttempts = 1;
    std::size_t calls = 0;
    auto result = vs::retryWithBackoff(policy, [&] {
        ++calls;
        return vs::Expected<int>(
            VIVA_ERROR(vs::Errc::Io, "down"));
    });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(calls, 1u);
}

// --- session integration -------------------------------------------------------

TEST(Retry, TransientTraceReadFaultRecoversOnRetry)
{
    FaultGuard guard;
    vs::FakeClock fake;
    vs::ClockOverride clock_guard(fake);

    auto path = tempDir() + "/figure1.viva";
    ASSERT_TRUE(vt::writeTraceFile(vt::makeFigure1Trace(), path).ok());

    vap::Session s(vt::makeFigure1Trace());
    s.retryPolicy().maxAttempts = 3;

    // The first read attempt dies mid-stream; the retry reads clean.
    vs::FaultSpec spec;
    spec.maxFires = 1;
    vs::FaultInjector::global().arm("trace.read.stream", spec);

    const std::uint64_t attempts_before = counterValue("retry.attempts");
    auto loaded = s.load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(counterValue("retry.attempts"), attempts_before + 1);
    EXPECT_EQ(s.cut().visibleCount(), 3u);
}

TEST(Retry, ExhaustedTraceReadLeavesTheSessionUnchanged)
{
    FaultGuard guard;
    vs::FakeClock fake;
    vs::ClockOverride clock_guard(fake);

    auto path = tempDir() + "/figure1b.viva";
    ASSERT_TRUE(vt::writeTraceFile(vt::makeFigure1Trace(), path).ok());

    vap::Session s(vt::makeFigure1Trace());
    s.retryPolicy().maxAttempts = 2;
    const std::uint64_t digest = s.stateDigest();

    vs::FaultInjector::global().arm("trace.read.stream");

    const std::uint64_t exhausted_before =
        counterValue("retry.exhausted");
    auto loaded = s.load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code(), vs::Errc::Io);
    EXPECT_EQ(counterValue("retry.exhausted"), exhausted_before + 1);
    EXPECT_EQ(s.stateDigest(), digest);
}
