/**
 * @file
 * The differential determinism suite for the parallel engine: the
 * ThreadPool primitives themselves (coverage, ordered reduction,
 * exception and shutdown safety), then the load-bearing guarantee --
 * layouts and Equation-1 aggregations run with threads in {1, 2, 8}
 * produce *bitwise identical* results, so the thread knob can never
 * change an analysis, only its wall-clock time.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "agg/aggregate.hh"
#include "agg/hierarchy_cut.hh"
#include "app/commands.hh"
#include "app/session.hh"
#include "layout/force.hh"
#include "layout/graph.hh"
#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "support/random.hh"
#include "support/threadpool.hh"
#include "trace/trace.hh"

namespace vl = viva::layout;
namespace va = viva::agg;
namespace vp = viva::platform;
namespace vt = viva::trace;
using viva::support::ThreadPool;

// --- ThreadPool primitives ---------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 10000;
    std::vector<int> hits(n, 0);
    ThreadPool::global().parallelFor(0, n, 7, 8,
                                     [&](std::size_t lo, std::size_t hi) {
                                         for (std::size_t i = lo; i < hi;
                                              ++i)
                                             ++hits[i];
                                     });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    bool ran = false;
    ThreadPool::global().parallelFor(
        5, 5, 4, 8, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReduceOrderedIsThreadCountInvariant)
{
    // A deliberately non-associative-friendly float sum: magnitudes
    // spanning 12 orders. The reduction must be bitwise identical for
    // every thread count because the chunking is.
    constexpr std::size_t n = 5000;
    std::vector<double> data(n);
    viva::support::Rng rng(99);
    for (double &d : data)
        d = rng.uniform(0.0, 1.0) * std::pow(10.0, rng.uniform(-6.0, 6.0));

    auto sum_with = [&](std::size_t threads) {
        return ThreadPool::global().reduceOrdered<double>(
            0, n, 64, threads, 0.0,
            [&](std::size_t lo, std::size_t hi) {
                double s = 0.0;
                for (std::size_t i = lo; i < hi; ++i)
                    s += data[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    double serial = sum_with(1);
    EXPECT_EQ(serial, sum_with(2));
    EXPECT_EQ(serial, sum_with(8));
    // And it really is a sum of everything.
    double naive = std::accumulate(data.begin(), data.end(), 0.0);
    EXPECT_NEAR(serial, naive, 1e-9 * std::abs(naive));
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable)
{
    EXPECT_THROW(
        ThreadPool::global().parallelFor(
            0, 1000, 8, 8,
            [&](std::size_t lo, std::size_t) {
                if (lo >= 500)
                    throw std::runtime_error("chunk failed");
            }),
        std::runtime_error);

    // The pool must survive: the next batch runs to completion.
    std::vector<int> hits(256, 0);
    ThreadPool::global().parallelFor(0, 256, 16, 8,
                                     [&](std::size_t lo, std::size_t hi) {
                                         for (std::size_t i = lo; i < hi;
                                              ++i)
                                             ++hits[i];
                                     });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelCallsRunInline)
{
    std::vector<int> hits(400, 0);
    ThreadPool::global().parallelFor(
        0, 4, 1, 4, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t outer = lo; outer < hi; ++outer) {
                // A chunk body calling back into the pool must not
                // deadlock; the inner call runs inline.
                ThreadPool::global().parallelFor(
                    outer * 100, (outer + 1) * 100, 10, 8,
                    [&](std::size_t ilo, std::size_t ihi) {
                        for (std::size_t i = ilo; i < ihi; ++i)
                            ++hits[i];
                    });
            }
        });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ShutdownJoinsCleanly)
{
    // Construction, work, destruction -- repeatedly, so a leaked or
    // wedged worker thread would show up as a hang or TSan report.
    for (int round = 0; round < 3; ++round) {
        ThreadPool pool(4);
        EXPECT_EQ(pool.workerCount(), 4u);
        std::vector<int> hits(1000, 0);
        pool.parallelFor(0, 1000, 13, 5,
                         [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i)
                                 ++hits[i];
                         });
        for (int h : hits)
            ASSERT_EQ(h, 1);
    }
}

TEST(ThreadPool, ResizeGrowsAndShrinks)
{
    ThreadPool pool;
    EXPECT_EQ(pool.workerCount(), 0u);
    pool.resize(3);
    EXPECT_EQ(pool.workerCount(), 3u);
    pool.resize(1);
    EXPECT_EQ(pool.workerCount(), 1u);
    // Still works after shrinking.
    int total = pool.reduceOrdered<int>(
        0, 100, 10, 2, 0,
        [](std::size_t lo, std::size_t hi) { return int(hi - lo); },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(total, 100);
}

// --- differential layout determinism -----------------------------------------

namespace
{

/** The bench generator: a random tree plus chords, n nodes. */
vl::LayoutGraph
makeGraph(std::size_t n, std::uint64_t seed)
{
    viva::support::Rng rng(seed);
    vl::LayoutGraph g;
    std::vector<vl::NodeId> ids;
    ids.reserve(n);
    double extent = 50.0 * std::sqrt(double(n));
    for (std::size_t i = 0; i < n; ++i)
        ids.push_back(g.addNode(i,
                                {rng.uniform(0.0, extent),
                                 rng.uniform(0.0, extent)},
                                rng.uniform(0.5, 4.0)));
    for (std::size_t i = 1; i < n; ++i)
        g.addEdge(ids[i], ids[rng.index(i)]);
    for (std::size_t i = 0; i < n / 4; ++i) {
        std::size_t a = rng.index(n);
        std::size_t b = rng.index(n);
        if (a != b)
            g.addEdge(ids[a], ids[b]);
    }
    return g;
}

/** Positions after `steps` iterations with a given thread count. */
std::vector<vl::Vec2>
layoutWith(std::size_t threads, bool barnes_hut, std::size_t steps,
           std::size_t n = 600)
{
    vl::LayoutGraph g = makeGraph(n, 42);
    vl::ForceLayout layout(g);
    layout.params().useBarnesHut = barnes_hut;
    layout.params().threads = threads;
    for (std::size_t s = 0; s < steps; ++s)
        layout.step();
    std::vector<vl::Vec2> out;
    for (const vl::Node &node : g.rawNodes())
        out.push_back(node.position);
    return out;
}

/** Bitwise equality of two position sets. */
void
expectIdentical(const std::vector<vl::Vec2> &a,
                const std::vector<vl::Vec2> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // EXPECT_EQ on doubles is exact comparison: bitwise identity
        // (positions are never NaN).
        ASSERT_EQ(a[i].x, b[i].x) << "node " << i;
        ASSERT_EQ(a[i].y, b[i].y) << "node " << i;
    }
}

} // namespace

TEST(ParallelLayout, BarnesHutStepsAreBitwiseThreadCountInvariant)
{
    auto serial = layoutWith(1, true, 25);
    expectIdentical(serial, layoutWith(2, true, 25));
    expectIdentical(serial, layoutWith(8, true, 25));
}

TEST(ParallelLayout, NaiveStepsAreBitwiseThreadCountInvariant)
{
    auto serial = layoutWith(1, false, 10, 300);
    expectIdentical(serial, layoutWith(2, false, 10, 300));
    expectIdentical(serial, layoutWith(8, false, 10, 300));
}

TEST(ParallelLayout, StabilizeIsBitwiseThreadCountInvariant)
{
    auto run = [](std::size_t threads) {
        vl::LayoutGraph g = makeGraph(200, 7);
        vl::ForceLayout layout(g);
        layout.params().threads = threads;
        std::size_t iters = layout.stabilize(400, 1e-4);
        std::vector<vl::Vec2> out;
        for (const vl::Node &node : g.rawNodes())
            out.push_back(node.position);
        return std::make_pair(iters, out);
    };
    auto [it1, pos1] = run(1);
    auto [it2, pos2] = run(2);
    auto [it8, pos8] = run(8);
    // Same energies => same cooling schedule => same iteration count.
    EXPECT_EQ(it1, it2);
    EXPECT_EQ(it1, it8);
    expectIdentical(pos1, pos2);
    expectIdentical(pos1, pos8);
}

// --- differential aggregation determinism ------------------------------------

namespace
{

/**
 * A 3-site synthetic grid with a busy piecewise-constant utilization
 * history per host, plus a random cut -- the aggregation workload for
 * the differential checks.
 */
struct GridFixture
{
    vt::Trace trace;
    vt::MetricId power = vt::kNoMetric;
    vt::MetricId used = vt::kNoMetric;

    explicit GridFixture(std::uint64_t seed)
    {
        viva::support::Rng rng(seed);
        vp::Platform p = vp::makeSyntheticGrid(3, 3, 13, rng);
        auto mirror = vp::mirrorPlatform(p, trace);
        power = mirror.power;
        used = mirror.powerUsed;
        viva::support::Rng vals(seed + 1);
        for (auto c : mirror.hostContainer) {
            vt::Variable &v = trace.variable(c, used);
            double t = 0.0;
            for (int k = 0; k < 6; ++k) {
                v.set(t, vals.uniform(0.0, 3000.0));
                t += vals.uniform(0.1, 1.5);
            }
        }
    }
};

} // namespace

TEST(ParallelAggregation, ValueIsBitwiseThreadCountInvariant)
{
    GridFixture f(31);
    va::TimeSlice slice{0.2, 4.7};
    for (auto sop : {va::SpatialOp::Sum, va::SpatialOp::Average,
                     va::SpatialOp::Max, va::SpatialOp::Min}) {
        for (auto top : {va::TemporalOp::Average, va::TemporalOp::Max,
                         va::TemporalOp::Min, va::TemporalOp::Integral}) {
            va::Aggregator a1(f.trace, 1);
            va::Aggregator a2(f.trace, 2);
            va::Aggregator a8(f.trace, 8);
            double v1 = a1.value(f.trace.root(), f.used, slice, sop, top);
            double v2 = a2.value(f.trace.root(), f.used, slice, sop, top);
            double v8 = a8.value(f.trace.root(), f.used, slice, sop, top);
            EXPECT_EQ(v1, v2);
            EXPECT_EQ(v1, v8);
        }
    }
}

TEST(ParallelAggregation, DistributionIsBitwiseThreadCountInvariant)
{
    GridFixture f(32);
    va::TimeSlice slice{0.0, 3.0};
    va::Aggregator a1(f.trace, 1);
    va::Aggregator a8(f.trace, 8);
    auto d1 = a1.distribution(f.trace.root(), f.used, slice);
    auto d8 = a8.distribution(f.trace.root(), f.used, slice);
    ASSERT_EQ(d1.count(), d8.count());
    // Same sample *sequence*, not just the same multiset.
    for (std::size_t i = 0; i < d1.count(); ++i)
        ASSERT_EQ(d1.data()[i], d8.data()[i]) << "sample " << i;
    EXPECT_EQ(d1.median(), d8.median());
    EXPECT_EQ(d1.variance(), d8.variance());
}

TEST(ParallelAggregation, BuildViewIsBitwiseThreadCountInvariant)
{
    GridFixture f(33);
    va::HierarchyCut cut(f.trace);
    viva::support::Rng rng(5);
    for (int op = 0; op < 10; ++op)
        cut.aggregate(
            vt::ContainerId(rng.index(f.trace.containerCount())));

    std::vector<va::MetricRequest> requests{
        va::MetricRequest(f.power, va::SpatialOp::Sum),
        va::MetricRequest(f.used, va::SpatialOp::Average,
                          va::TemporalOp::Max)};
    for (bool with_stats : {false, true}) {
        va::View v1 = va::buildView(f.trace, cut, {0.3, 2.9}, requests,
                                    with_stats, 1);
        va::View v8 = va::buildView(f.trace, cut, {0.3, 2.9}, requests,
                                    with_stats, 8);
        ASSERT_EQ(v1.nodes.size(), v8.nodes.size());
        for (std::size_t i = 0; i < v1.nodes.size(); ++i) {
            ASSERT_EQ(v1.nodes[i].id, v8.nodes[i].id);
            ASSERT_EQ(v1.nodes[i].leafCount, v8.nodes[i].leafCount);
            ASSERT_EQ(v1.nodes[i].values.size(),
                      v8.nodes[i].values.size());
            for (std::size_t k = 0; k < v1.nodes[i].values.size(); ++k)
                ASSERT_EQ(v1.nodes[i].values[k], v8.nodes[i].values[k])
                    << "node " << i << " metric " << k;
            ASSERT_EQ(v1.nodes[i].stats.size(), v8.nodes[i].stats.size());
            for (std::size_t k = 0; k < v1.nodes[i].stats.size(); ++k) {
                ASSERT_EQ(v1.nodes[i].stats[k].variance,
                          v8.nodes[i].stats[k].variance);
                ASSERT_EQ(v1.nodes[i].stats[k].median,
                          v8.nodes[i].stats[k].median);
                ASSERT_EQ(v1.nodes[i].stats[k].min,
                          v8.nodes[i].stats[k].min);
                ASSERT_EQ(v1.nodes[i].stats[k].max,
                          v8.nodes[i].stats[k].max);
            }
        }
        ASSERT_EQ(v1.edges.size(), v8.edges.size());
    }
}

// --- the session knob --------------------------------------------------------

TEST(ParallelSession, SetThreadsCommandAndStatus)
{
    GridFixture f(40);
    viva::app::Session sess(std::move(f.trace));
    viva::app::CommandInterpreter cli(sess);

    std::ostringstream out;
    EXPECT_TRUE(cli.execute("set threads 4", out));
    EXPECT_EQ(sess.threads(), 4u);
    EXPECT_EQ(sess.forceParams().threads, 4u);
    EXPECT_NE(out.str().find("threads = 4"), std::string::npos);

    out.str("");
    EXPECT_TRUE(cli.execute("status", out));
    EXPECT_NE(out.str().find("threads 4"), std::string::npos);
    EXPECT_NE(out.str().find("visible"), std::string::npos);

    out.str("");
    EXPECT_FALSE(cli.execute("set threads 0", out));
    EXPECT_FALSE(cli.execute("set threads x", out));
    EXPECT_FALSE(cli.execute("set sliders 2", out));
    EXPECT_EQ(sess.threads(), 4u);  // unchanged by the rejects
}

TEST(ParallelSession, ViewIdenticalAcrossThreadSettings)
{
    auto values_with = [](std::size_t threads) {
        GridFixture f(41);
        viva::app::Session sess(std::move(f.trace));
        sess.setThreads(threads);
        sess.aggregateToDepth(2);
        va::View v = sess.view(/*with_stats=*/true);
        std::vector<double> flat;
        for (const va::ViewNode &n : v.nodes)
            flat.insert(flat.end(), n.values.begin(), n.values.end());
        return flat;
    };
    auto v1 = values_with(1);
    auto v8 = values_with(8);
    ASSERT_EQ(v1.size(), v8.size());
    for (std::size_t i = 0; i < v1.size(); ++i)
        ASSERT_EQ(v1[i], v8[i]);
}
