/**
 * @file
 * Unit tests for viva::support: strings, stats, intervals, rng, logging.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/interval.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "support/scratch.hh"
#include "support/stats.hh"
#include "support/strings.hh"

namespace vs = viva::support;

// --- strings ---------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields)
{
    auto fields = vs::split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField)
{
    auto fields = vs::split("abc", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpties)
{
    auto fields = vs::splitWhitespace("  a \t b\nc  ");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b");
    EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitWhitespaceEmptyInput)
{
    EXPECT_TRUE(vs::splitWhitespace("").empty());
    EXPECT_TRUE(vs::splitWhitespace("   \t ").empty());
}

TEST(Strings, Trim)
{
    EXPECT_EQ(vs::trim("  x y  "), "x y");
    EXPECT_EQ(vs::trim(""), "");
    EXPECT_EQ(vs::trim(" \t\r\n"), "");
    EXPECT_EQ(vs::trim("abc"), "abc");
}

TEST(Strings, Join)
{
    EXPECT_EQ(vs::join({"a", "b", "c"}, "/"), "a/b/c");
    EXPECT_EQ(vs::join({}, "/"), "");
    EXPECT_EQ(vs::join({"x"}, ", "), "x");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(vs::startsWith("grid5000/lyon", "grid5000"));
    EXPECT_FALSE(vs::startsWith("grid", "grid5000"));
    EXPECT_TRUE(vs::endsWith("trace.viva", ".viva"));
    EXPECT_FALSE(vs::endsWith("a", "ab"));
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(vs::toLower("MFlops"), "mflops");
}

TEST(Strings, ParseDouble)
{
    double v = 0;
    EXPECT_TRUE(vs::parseDouble("3.5", v));
    EXPECT_DOUBLE_EQ(v, 3.5);
    EXPECT_TRUE(vs::parseDouble("  -1e3 ", v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
    EXPECT_FALSE(vs::parseDouble("12x", v));
    EXPECT_FALSE(vs::parseDouble("", v));
    EXPECT_FALSE(vs::parseDouble("abc", v));
}

TEST(Strings, ParseSize)
{
    std::size_t v = 0;
    EXPECT_TRUE(vs::parseSize("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_FALSE(vs::parseSize("-3", v));
    EXPECT_FALSE(vs::parseSize("3.5", v));
    EXPECT_FALSE(vs::parseSize("", v));
}

TEST(Strings, FormatDoubleRoundTrips)
{
    for (double x : {0.0, 1.5, -2.25, 1e-9, 123456789.0, 3.14159265358979}) {
        double back = 0;
        ASSERT_TRUE(vs::parseDouble(vs::formatDouble(x), back));
        EXPECT_DOUBLE_EQ(back, x);
    }
}

TEST(Strings, Humanize)
{
    EXPECT_EQ(vs::humanize(950.0), "950");
    EXPECT_EQ(vs::humanize(1500.0), "1.5K");
    EXPECT_EQ(vs::humanize(2.17e6), "2.17M");
    EXPECT_EQ(vs::humanize(-1500.0), "-1.5K");
}

// --- stats -------------------------------------------------------------------

TEST(RunningStats, Empty)
{
    vs::RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    vs::RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    vs::RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = std::sin(i * 0.7) * 10.0;
        (i < 20 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    vs::RunningStats a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Samples, MedianOddEven)
{
    vs::Samples s;
    for (double x : {5.0, 1.0, 3.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.median(), 4.0);  // (3 + 5) / 2
}

TEST(Samples, Quantiles)
{
    vs::Samples s;
    for (int i = 0; i <= 100; ++i)
        s.add(double(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 25.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.0);
}

TEST(Samples, QuantileAfterIncrementalAdds)
{
    vs::Samples s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);  // cache must refresh
}

TEST(Samples, EmptyQuantileIsZero)
{
    vs::Samples s;
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

// --- interval ------------------------------------------------------------------

TEST(Interval, Basics)
{
    vs::Interval i(2.0, 5.0);
    EXPECT_DOUBLE_EQ(i.length(), 3.0);
    EXPECT_FALSE(i.empty());
    EXPECT_TRUE(i.contains(2.0));
    EXPECT_TRUE(i.contains(4.999));
    EXPECT_FALSE(i.contains(5.0));
    EXPECT_FALSE(i.contains(1.999));
}

TEST(Interval, Intersect)
{
    vs::Interval a(0.0, 10.0), b(5.0, 15.0);
    vs::Interval c = a.intersect(b);
    EXPECT_DOUBLE_EQ(c.begin, 5.0);
    EXPECT_DOUBLE_EQ(c.end, 10.0);
    vs::Interval d(20.0, 30.0);
    EXPECT_TRUE(a.intersect(d).empty());
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(d));
}

TEST(Interval, Shifted)
{
    vs::Interval a(1.0, 2.0);
    vs::Interval b = a.shifted(10.0);
    EXPECT_DOUBLE_EQ(b.begin, 11.0);
    EXPECT_DOUBLE_EQ(b.end, 12.0);
}

// --- rng ------------------------------------------------------------------------

TEST(Rng, Deterministic)
{
    vs::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange)
{
    vs::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(3.0, 7.0);
        EXPECT_GE(v, 3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    vs::Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShufflePreservesElements)
{
    vs::Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ExponentialPositive)
{
    vs::Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_GT(rng.exponential(2.0), 0.0);
}

// --- logging ----------------------------------------------------------------------

TEST(Logging, WarnCountIncrements)
{
    vs::setQuiet(true);
    std::size_t before = vs::warnCount();
    vs::warn("test", "something odd: ", 42);
    EXPECT_EQ(vs::warnCount(), before + 1);
    vs::setQuiet(false);
}

TEST(Logging, AssertFiresOnFalse)
{
    EXPECT_DEATH({ VIVA_ASSERT(1 == 2, "impossible ", 3); }, "assertion");
}

TEST(Logging, AssertPassesOnTrue)
{
    VIVA_ASSERT(1 + 1 == 2, "math is broken");
    SUCCEED();
}

// --- ScratchPool ------------------------------------------------------------

TEST(ScratchPool, AcquireReusesReleasedObjects)
{
    vs::ScratchPool<std::vector<int>> pool;
    EXPECT_EQ(pool.idleCount(), 0u);
    {
        auto a = pool.acquire();
        auto b = pool.acquire();
        a->resize(1000);
        b->push_back(7);
        EXPECT_EQ(pool.idleCount(), 0u);
    }
    // Both handles released their objects back, capacity intact.
    EXPECT_EQ(pool.idleCount(), 2u);
    {
        auto c = pool.acquire();
        EXPECT_EQ(pool.idleCount(), 1u);
        // Pooled scratch comes back with its old contents; callers
        // reset what they need (forceAt clears its stack up front).
        EXPECT_GE(c->capacity(), 1u);
    }
    EXPECT_EQ(pool.idleCount(), 2u);
}

TEST(ScratchPool, MoveTransfersParkedObjects)
{
    vs::ScratchPool<std::vector<int>> pool;
    { auto h = pool.acquire(); h->push_back(1); }
    ASSERT_EQ(pool.idleCount(), 1u);
    vs::ScratchPool<std::vector<int>> stolen(std::move(pool));
    EXPECT_EQ(stolen.idleCount(), 1u);
    EXPECT_EQ(pool.idleCount(), 0u);
}
