/**
 * @file
 * Tests for the simulation tracer: traces must contain exactly the
 * piecewise-constant utilization the engine produced, including per-tag
 * application metrics.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "sim/tracer.hh"

namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vt = viva::trace;

namespace
{

vp::Platform
makePair()
{
    vp::Platform p("t");
    auto s = p.addSite("s");
    auto h0 = p.addHost("h0", 1000.0, s);
    auto h1 = p.addHost("h1", 500.0, s);
    auto l = p.addLink("l", 100.0, 0.0, s);
    p.connect(p.host(h0).vertex, p.host(h1).vertex, l);
    return p;
}

} // namespace

TEST(Tracer, RecordsComputeUtilization)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p);
    run.engine.startCompute(vp::HostId{0}, 2000.0, [] {});
    run.engine.run();

    const vt::Variable *used = run.trace.findVariable(
        run.mirror.hostContainer[0], run.mirror.powerUsed);
    ASSERT_NE(used, nullptr);
    // 1000 MFlop/s over [0, 2), zero after.
    EXPECT_DOUBLE_EQ(used->valueAt(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(used->valueAt(2.5), 0.0);
    EXPECT_DOUBLE_EQ(used->integrate(0.0, 3.0), 2000.0);
}

TEST(Tracer, RecordsLinkUtilization)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p);
    run.engine.startComm(vp::HostId{0}, vp::HostId{1}, 200.0, [] {});  // 2 s at 100 Mbit/s
    run.engine.run();

    const vt::Variable *used = run.trace.findVariable(
        run.mirror.linkContainer[0], run.mirror.bandwidthUsed);
    ASSERT_NE(used, nullptr);
    EXPECT_DOUBLE_EQ(used->valueAt(1.0), 100.0);
    EXPECT_DOUBLE_EQ(used->valueAt(2.5), 0.0);
    // Integral equals the bits moved.
    EXPECT_NEAR(used->integrate(0.0, 3.0), 200.0, 1e-9);
}

TEST(Tracer, UtilizationNeverExceedsCapacity)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p);
    for (int i = 0; i < 8; ++i)
        run.engine.startComm(vp::HostId{0}, vp::HostId{1}, 25.0, [] {});
    run.engine.run();

    const vt::Variable *used = run.trace.findVariable(
        run.mirror.linkContainer[0], run.mirror.bandwidthUsed);
    ASSERT_NE(used, nullptr);
    for (const auto &pt : used->changePoints())
        EXPECT_LE(pt.value, 100.0 * (1 + 1e-9));
    EXPECT_DOUBLE_EQ(used->maxOver(0.0, 10.0), 100.0);  // saturated
}

TEST(Tracer, SkipsRepeatedValues)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p);
    // Two identical back-to-back transfers: the rate stays 100 between
    // them only if they overlap; run them sequentially so it drops to 0
    // in between. Either way, h1's power_used never changes after the
    // initial 0 -> exactly one point for it.
    run.engine.startComm(vp::HostId{0}, vp::HostId{1}, 100.0, [] {});
    run.engine.run();

    const vt::Variable *idle_host = run.trace.findVariable(
        run.mirror.hostContainer[1], run.mirror.powerUsed);
    ASSERT_NE(idle_host, nullptr);
    EXPECT_EQ(idle_host->pointCount(), 1u);  // just the initial zero
    EXPECT_DOUBLE_EQ(idle_host->valueAt(5.0), 0.0);
}

TEST(Tracer, PerTagMetricsEmitted)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p, {"cpu", "net"});
    run.engine.startCompute(vp::HostId{0}, 1000.0, [] {}, 1);
    run.engine.startCompute(vp::HostId{0}, 500.0, [] {}, 2);
    run.engine.run();

    vt::MetricId m_cpu = run.trace.findMetric("power_used:cpu");
    vt::MetricId m_net = run.trace.findMetric("power_used:net");
    ASSERT_NE(m_cpu, vt::kNoMetric);
    ASSERT_NE(m_net, vt::kNoMetric);

    const vt::Variable *cpu =
        run.trace.findVariable(run.mirror.hostContainer[0], m_cpu);
    const vt::Variable *net =
        run.trace.findVariable(run.mirror.hostContainer[0], m_net);
    ASSERT_NE(cpu, nullptr);
    ASSERT_NE(net, nullptr);
    // Both share until t=1 (500 each), then cpu finishes alone at 1.5.
    EXPECT_DOUBLE_EQ(cpu->valueAt(0.5), 500.0);
    EXPECT_DOUBLE_EQ(net->valueAt(0.5), 500.0);
    EXPECT_DOUBLE_EQ(net->valueAt(1.2), 0.0);
    EXPECT_DOUBLE_EQ(cpu->valueAt(1.2), 1000.0);

    // Per-tag integrals add up to the work done.
    EXPECT_NEAR(cpu->integrate(0.0, 2.0), 1000.0, 1e-9);
    EXPECT_NEAR(net->integrate(0.0, 2.0), 500.0, 1e-9);
}

TEST(Tracer, NoPerTagMetricsWithoutTags)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p);
    run.engine.startCompute(vp::HostId{0}, 100.0, [] {});
    run.engine.run();
    EXPECT_EQ(run.trace.findMetric("power_used:default"), vt::kNoMetric);
}

TEST(Tracer, TraceSpanCoversTheRun)
{
    vp::Platform p = makePair();
    vs::SimulationRun run(p);
    run.engine.startCompute(vp::HostId{0}, 5000.0, [] {});  // 5 s
    run.engine.run();
    EXPECT_DOUBLE_EQ(run.trace.span().begin, 0.0);
    EXPECT_NEAR(run.trace.span().end, 5.0, 1e-9);
    EXPECT_GT(run.tracer.pointsWritten(), 0u);
}
