/**
 * @file
 * Tests for the viva-perfdiff library: the "viva-obs-1" parser must
 * round-trip exactly what support::obs::writeJson() emits and reject
 * everything else loudly, and the comparator must flag regressions
 * beyond the threshold while ignoring noise-floor phases.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/obs.hh"
#include "tools/perfdiff.hh"

namespace obs = viva::support::obs;
namespace pd = viva::perfdiff;
namespace vs = viva::support;

namespace
{

/** A registry export with one of each metric kind, as JSON text. */
std::string
sampleJson()
{
    obs::Registry reg;
    reg.add(reg.counter("t.counter"), 42);
    reg.set(reg.gauge("t.gauge"), -5);
    obs::HistogramId h = reg.histogram("t.phase");
    reg.record(h, 1000);
    reg.record(h, 3000);
    std::ostringstream out;
    obs::writeJson(reg.snapshot(), out);
    return out.str();
}

/** Parse JSON text, asserting success. */
pd::ObsExport
parsed(const std::string &text)
{
    std::istringstream in(text);
    auto result = pd::parseObsJson(in);
    EXPECT_TRUE(result.ok())
        << (result.ok() ? "" : result.error().toString());
    return result.ok() ? *result : pd::ObsExport{};
}

/** An export with a single phase, for comparator tests. */
pd::ObsExport
phaseExport(std::uint64_t count, std::uint64_t sum)
{
    pd::ObsExport e;
    pd::PhaseStats p;
    p.count = count;
    p.sumNanos = sum;
    p.meanNanos = count ? sum / count : 0;
    e.phases["hot.loop"] = p;
    return e;
}

} // namespace

// --- parsing ----------------------------------------------------------------

TEST(PerfDiffParse, RoundTripsWriteJson)
{
    pd::ObsExport e = parsed(sampleJson());
    EXPECT_EQ(e.counters.at("t.counter"), 42u);
    EXPECT_EQ(e.gauges.at("t.gauge"), -5);
    const pd::PhaseStats &p = e.phases.at("t.phase");
    EXPECT_EQ(p.count, 2u);
    EXPECT_EQ(p.sumNanos, 4000u);
    EXPECT_EQ(p.meanNanos, 2000u);
}

TEST(PerfDiffParse, AlwaysSeesTheDropCounter)
{
    // Every registry carries obs.dropped_registrations in slot 0.
    pd::ObsExport e = parsed(sampleJson());
    EXPECT_EQ(e.counters.count("obs.dropped_registrations"), 1u);
}

TEST(PerfDiffParse, RejectsWrongSchema)
{
    std::istringstream in(
        "{\"schema\": \"viva-obs-99\", \"counters\": []}");
    auto result = pd::parseObsJson(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Parse);
}

TEST(PerfDiffParse, RejectsMissingSchema)
{
    std::istringstream in("{\"counters\": []}");
    auto result = pd::parseObsJson(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Parse);
}

TEST(PerfDiffParse, RejectsUnknownKeys)
{
    std::istringstream in(
        "{\"schema\": \"viva-obs-1\", \"surprise\": []}");
    auto result = pd::parseObsJson(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Parse);
}

TEST(PerfDiffParse, RejectsGarbage)
{
    std::istringstream in("not json at all");
    EXPECT_FALSE(pd::parseObsJson(in).ok());
}

TEST(PerfDiffParse, RejectsTruncatedInput)
{
    std::string text = sampleJson();
    std::istringstream in(text.substr(0, text.size() / 2));
    EXPECT_FALSE(pd::parseObsJson(in).ok());
}

TEST(PerfDiffParse, MissingFileIsAnIoError)
{
    auto result = pd::parseObsJsonFile("/no/such/file.json");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), vs::Errc::Io);
}

// --- comparison -------------------------------------------------------------

TEST(PerfDiffCompare, IdenticalExportsAreClean)
{
    pd::ObsExport e = phaseExport(10, 50000000);
    pd::DiffResult result = pd::diffExports(e, e);
    EXPECT_TRUE(result.regressions.empty());
}

TEST(PerfDiffCompare, FlagsARegressionBeyondTheThreshold)
{
    pd::ObsExport base = phaseExport(10, 50000000);   // mean 5 ms
    pd::ObsExport cand = phaseExport(10, 100000000);  // mean 10 ms
    pd::DiffResult result = pd::diffExports(base, cand);
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_EQ(result.regressions[0].name, "hot.loop");
    EXPECT_DOUBLE_EQ(result.regressions[0].ratio, 2.0);
}

TEST(PerfDiffCompare, ToleratesGrowthWithinTheThreshold)
{
    pd::ObsExport base = phaseExport(10, 50000000);
    pd::ObsExport cand = phaseExport(10, 52000000);  // +4% < 10%
    EXPECT_TRUE(pd::diffExports(base, cand).regressions.empty());
}

TEST(PerfDiffCompare, ThresholdIsConfigurable)
{
    pd::ObsExport base = phaseExport(10, 50000000);
    pd::ObsExport cand = phaseExport(10, 52000000);  // +4%
    pd::DiffOptions strict;
    strict.threshold = 0.01;
    EXPECT_EQ(pd::diffExports(base, cand, strict).regressions.size(),
              1u);
}

TEST(PerfDiffCompare, NoiseFloorSkipsTinyPhases)
{
    // 10x regression, but the baseline total is 4000 ns -- noise.
    pd::ObsExport base = phaseExport(4, 4000);
    pd::ObsExport cand = phaseExport(4, 40000);
    pd::DiffResult result = pd::diffExports(base, cand);
    EXPECT_TRUE(result.regressions.empty());
    ASSERT_EQ(result.notes.size(), 1u);
    EXPECT_NE(result.notes[0].find("noise floor"), std::string::npos);

    pd::DiffOptions no_floor;
    no_floor.minSumNanos = 0;
    EXPECT_EQ(pd::diffExports(base, cand, no_floor).regressions.size(),
              1u);
}

TEST(PerfDiffCompare, MissingAndNewPhasesAreNotedNotFlagged)
{
    pd::ObsExport base = phaseExport(10, 50000000);
    pd::ObsExport cand;
    cand.phases["brand.new"] = base.phases["hot.loop"];
    pd::DiffResult result = pd::diffExports(base, cand);
    EXPECT_TRUE(result.regressions.empty());
    ASSERT_EQ(result.notes.size(), 2u);
    EXPECT_NE(result.notes[0].find("missing"), std::string::npos);
    EXPECT_NE(result.notes[1].find("new"), std::string::npos);
}

TEST(PerfDiffCompare, ReportNamesEveryRegression)
{
    pd::ObsExport base = phaseExport(10, 50000000);
    pd::ObsExport cand = phaseExport(10, 100000000);
    std::ostringstream out;
    pd::writeReport(pd::diffExports(base, cand), out);
    EXPECT_NE(out.str().find("REGRESSION hot.loop"), std::string::npos);

    std::ostringstream clean;
    pd::writeReport(pd::diffExports(base, base), clean);
    EXPECT_NE(clean.str().find("no regressions"), std::string::npos);
}
