/**
 * @file
 * Tests for the simulation engine: event ordering, fluid activity
 * timing under contention, latency handling, tags and run-until.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "sim/engine.hh"

namespace vp = viva::platform;
namespace vs = viva::sim;

namespace
{

/** Two hosts joined by one 100 Mbit/s link with 10 ms latency. */
vp::Platform
makePair()
{
    vp::Platform p("t");
    auto s = p.addSite("s");
    auto h0 = p.addHost("h0", 1000.0, s);
    auto h1 = p.addHost("h1", 500.0, s);
    auto l = p.addLink("l", 100.0, 0.01, s);
    p.connect(p.host(h0).vertex, p.host(h1).vertex, l);
    return p;
}

} // namespace

TEST(Engine, StartsAtTimeZero)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    EXPECT_DOUBLE_EQ(e.now(), 0.0);
    EXPECT_TRUE(e.idle());
}

TEST(Engine, TimedEventsFireInOrder)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    std::vector<int> order;
    e.at(2.0, [&] { order.push_back(2); });
    e.at(1.0, [&] { order.push_back(1); });
    e.at(2.0, [&] { order.push_back(3); });  // same time: FIFO by seq
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(e.now(), 2.0);
    EXPECT_EQ(e.firedEvents(), 3u);
}

TEST(Engine, AfterIsRelative)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double fired_at = -1.0;
    e.at(5.0, [&] { e.after(2.5, [&] { fired_at = e.now(); }); });
    e.run();
    EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, SoloComputeTakesWorkOverPower)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double done_at = -1.0;
    // 2000 MFlop on a 1000 MFlops host: 2 seconds.
    e.startCompute(vp::HostId{0}, 2000.0, [&] { done_at = e.now(); });
    e.run();
    EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(Engine, TwoComputesShareTheHost)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double t1 = -1.0, t2 = -1.0;
    // Both on h0 (1000 MFlops): each gets 500 until the first finishes.
    e.startCompute(vp::HostId{0}, 500.0, [&] { t1 = e.now(); });
    e.startCompute(vp::HostId{0}, 1000.0, [&] { t2 = e.now(); });
    e.run();
    // t1: 500 at rate 500 -> 1.0 s. Then the second has 500 left at
    // full rate: finishes at 1.0 + 0.5 = 1.5 s.
    EXPECT_NEAR(t1, 1.0, 1e-9);
    EXPECT_NEAR(t2, 1.5, 1e-9);
}

TEST(Engine, CommTimeIsTransferPlusLatency)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double done_at = -1.0;
    // 50 Mbit over 100 Mbit/s = 0.5 s, plus 10 ms latency.
    e.startComm(vp::HostId{0}, vp::HostId{1}, 50.0, [&] { done_at = e.now(); });
    e.run();
    EXPECT_NEAR(done_at, 0.51, 1e-9);
}

TEST(Engine, TwoCommsShareTheLink)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double t1 = -1.0, t2 = -1.0;
    e.startComm(vp::HostId{0}, vp::HostId{1}, 50.0, [&] { t1 = e.now(); });
    e.startComm(vp::HostId{0}, vp::HostId{1}, 50.0, [&] { t2 = e.now(); });
    e.run();
    // Equal share 50 each: both transfers end at 1.0, delivery +10 ms.
    EXPECT_NEAR(t1, 1.01, 1e-9);
    EXPECT_NEAR(t2, 1.01, 1e-9);
}

TEST(Engine, ZeroWorkCompletesViaEvent)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    bool done = false;
    auto id = e.startCompute(vp::HostId{0}, 0.0, [&] { done = true; });
    EXPECT_EQ(id, vs::kNoActivity);
    e.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Engine, LocalCommOnlyLatency)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double done_at = -1.0;
    auto id = e.startComm(vp::HostId{0}, vp::HostId{0}, 1000.0, [&] { done_at = e.now(); });
    EXPECT_EQ(id, vs::kNoActivity);
    e.run();
    EXPECT_DOUBLE_EQ(done_at, 0.0);  // empty route: zero latency
}

TEST(Engine, ActivityIntrospection)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    auto id = e.startCompute(vp::HostId{0}, 1000.0, [] {});
    EXPECT_TRUE(e.activityRunning(id));
    EXPECT_DOUBLE_EQ(e.activityRemaining(id), 1000.0);
    EXPECT_DOUBLE_EQ(e.activityRate(id), 1000.0);
    e.run(0.25);
    EXPECT_NEAR(e.activityRemaining(id), 750.0, 1e-6);
    e.run();
    EXPECT_FALSE(e.activityRunning(id));
}

TEST(Engine, RunUntilStopsEarly)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    bool done = false;
    e.startCompute(vp::HostId{0}, 10000.0, [&] { done = true; });  // 10 s of work
    e.run(3.0);
    EXPECT_DOUBLE_EQ(e.now(), 3.0);
    EXPECT_FALSE(done);
    EXPECT_FALSE(e.idle());
    e.run();
    EXPECT_TRUE(done);
    EXPECT_NEAR(e.now(), 10.0, 1e-9);
}

TEST(Engine, RatesObservable)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    e.startCompute(vp::HostId{0}, 1000.0, [] {});
    e.startComm(vp::HostId{0}, vp::HostId{1}, 100.0, [] {});
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{0}), 1000.0);
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{1}), 0.0);
    EXPECT_DOUBLE_EQ(e.linkRate(vp::LinkId{0}), 100.0);
    e.run();
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{0}), 0.0);
    EXPECT_DOUBLE_EQ(e.linkRate(vp::LinkId{0}), 0.0);
}

TEST(Engine, TagsAccountSeparately)
{
    vp::Platform p = makePair();
    vs::Engine e(p, {"app1", "app2"});
    EXPECT_EQ(e.tagCount(), 3u);
    EXPECT_EQ(e.tagName(1), "app1");

    e.startCompute(vp::HostId{0}, 1000.0, [] {}, 1);
    e.startCompute(vp::HostId{0}, 1000.0, [] {}, 2);
    // Equal sharing: 500 each.
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{0}), 1000.0);
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{0}, 1), 500.0);
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{0}, 2), 500.0);
    EXPECT_DOUBLE_EQ(e.hostRate(vp::HostId{0}, viva::sim::kDefaultTag), 0.0);
    e.run();
}

TEST(Engine, ChainedActivitiesKeepVirtualTime)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    double second_done = -1.0;
    e.startCompute(vp::HostId{0}, 1000.0, [&] {
        e.startComm(vp::HostId{0}, vp::HostId{1}, 100.0, [&] { second_done = e.now(); });
    });
    e.run();
    // 1 s compute, then 1 s transfer + 10 ms latency.
    EXPECT_NEAR(second_done, 2.01, 1e-9);
}

TEST(Engine, ManyParallelChainsDrain)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    int completions = 0;
    for (int i = 0; i < 50; ++i) {
        e.startCompute(vp::HostId::fromIndex(i % 2), 100.0 * (i + 1), [&] { ++completions; });
    }
    e.run();
    EXPECT_EQ(completions, 50);
    EXPECT_TRUE(e.idle());
    EXPECT_GT(e.fairShareRuns(), 50u);
}

TEST(EngineDeath, PastEventAsserts)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    e.at(5.0, [] {});
    e.run();
    EXPECT_DEATH(e.at(1.0, [] {}), "past");
}

TEST(EngineDeath, TagAfterStartAsserts)
{
    vp::Platform p = makePair();
    vs::Engine e(p);
    e.startCompute(vp::HostId{0}, 1.0, [] {});
    EXPECT_DEATH(e.registerTag("late"), "before activities");
}
