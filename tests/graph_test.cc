/**
 * @file
 * Tests for the viva-graph engine. The extraction section pins the
 * per-file facts (qualified names, overload collapse, unresolved call
 * sites); the rule sections drive each transitive rule against
 * good/bad/waived fixture triples under virtual repo paths; the cache
 * section covers the warm path, invalidation and the corrupt-cache
 * fallback; the output section pins JSON/DOT byte stability across
 * thread counts.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/graph.hh"

namespace vg = viva::graph;

namespace
{

/** Load one fixture file from the source tree. */
std::string
fixture(const std::string &name)
{
    std::string path = std::string(VIVA_GRAPH_FIXTURES) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** A fixture file mounted at a virtual repo path. */
vg::FileInput
at(const std::string &path, const std::string &name)
{
    return {path, fixture(name)};
}

/** The sink definitions every rule set anchors on. */
vg::FileInput
sinks()
{
    return at("src/support/log.hh", "support_sinks.hh");
}

/** The main() that keeps fixture entry points alive. */
vg::FileInput
driver()
{
    return at("tests/driver.cc", "driver.cc");
}

vg::Result
run(const std::vector<vg::FileInput> &files,
    const std::string &cacheText = std::string(),
    std::size_t jobs = 1)
{
    vg::Options options;
    options.cacheText = cacheText;
    options.jobs = jobs;
    return vg::runGraph(files, options);
}

std::size_t
countRule(const vg::Result &result, const std::string &rule)
{
    std::size_t n = 0;
    for (const vg::Finding &f : result.findings)
        if (f.rule == rule)
            ++n;
    return n;
}

bool
hasFinding(const vg::Result &result, const std::string &rule,
           const std::string &needle)
{
    for (const vg::Finding &f : result.findings)
        if (f.rule == rule &&
            f.message.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace

// --- extraction -----------------------------------------------------

TEST(GraphExtract, QualifiedNamesAndOverloads)
{
    vg::FileFacts facts =
        vg::extractFacts(at("src/demo/overload.cc", "overload.cc"));
    std::size_t scales = 0, entries = 0;
    for (const vg::SymbolFact &s : facts.symbols) {
        if (s.qname == "viva::demo::scale" && s.defined)
            ++scales;
        if (s.qname == "viva::demo::entryOverload" && s.defined)
            ++entries;
    }
    EXPECT_EQ(scales, 2u);
    EXPECT_EQ(entries, 1u);
}

TEST(GraphExtract, FunctionPointerCallIsUnresolved)
{
    vg::FileFacts facts = vg::extractFacts(
        at("src/demo/unresolved.cc", "unresolved.cc"));
    EXPECT_EQ(facts.unresolvedSites, 1u);
}

TEST(GraphExtract, OverloadSetCollapsesToOneNode)
{
    const vg::Result result =
        run({at("src/demo/overload.cc", "overload.cc")});
    // Three definitions, two distinct qualified names, one node for
    // the whole scale() overload set.
    EXPECT_EQ(result.symbols, 2u);
    EXPECT_EQ(result.definedSymbols, 2u);
    EXPECT_GE(result.edges, 1u);
}

// --- transitive rules -----------------------------------------------

TEST(GraphRules, FatalReachableTriple)
{
    const vg::Result result =
        run({sinks(), at("src/demo/fatal_bad.cc", "fatal_bad.cc"),
             at("src/demo/fatal_good.cc", "fatal_good.cc"),
             at("src/demo/fatal_waived.cc", "fatal_waived.cc"),
             driver()});
    EXPECT_EQ(countRule(result, "fatal-reachable"), 2u);
    EXPECT_TRUE(hasFinding(result, "fatal-reachable", "helperDepth"));
    EXPECT_TRUE(
        hasFinding(result, "fatal-reachable", "entryFatalBad"));
    // The waived boundary absorbs: neither it nor its caller fires.
    EXPECT_FALSE(
        hasFinding(result, "fatal-reachable", "entryFatalWaived"));
    EXPECT_FALSE(
        hasFinding(result, "fatal-reachable", "entryFatalGood"));
}

TEST(GraphRules, ClockReachableTriple)
{
    const vg::Result result =
        run({at("src/support/clock.cc", "clock_shim.cc"),
             at("src/demo/clock_bad.cc", "clock_bad.cc"),
             at("src/demo/clock_good.cc", "clock_good.cc"),
             at("src/demo/clock_waived.cc", "clock_waived.cc"),
             driver()});
    EXPECT_EQ(countRule(result, "clock-reachable"), 2u);
    EXPECT_TRUE(hasFinding(result, "clock-reachable", "readRawClock"));
    EXPECT_TRUE(
        hasFinding(result, "clock-reachable", "entryClockBad"));
    // The shim and the waived probe absorb their callers.
    EXPECT_FALSE(
        hasFinding(result, "clock-reachable", "entryClockGood"));
    EXPECT_FALSE(
        hasFinding(result, "clock-reachable", "entryClockWaived"));
}

TEST(GraphRules, IoInHotPathTriple)
{
    const vg::Result result =
        run({sinks(), at("src/demo/hot_bad.cc", "hot_bad.cc"),
             at("src/demo/hot_good.cc", "hot_good.cc"),
             at("src/demo/hot_waived.cc", "hot_waived.cc"),
             driver()});
    EXPECT_EQ(countRule(result, "io-in-hot-path"), 1u);
    for (const vg::Finding &f : result.findings) {
        if (f.rule == "io-in-hot-path") {
            EXPECT_EQ(f.file, "src/demo/hot_bad.cc");
        }
    }
}

TEST(GraphRules, DeadSymbolTriple)
{
    const vg::Result result =
        run({at("src/demo/dead_bad.cc", "dead_bad.cc"),
             at("src/demo/dead_good.cc", "dead_good.cc"),
             at("src/demo/dead_waived.cc", "dead_waived.cc"),
             driver()});
    EXPECT_EQ(countRule(result, "dead-symbol"), 1u);
    EXPECT_TRUE(hasFinding(result, "dead-symbol", "orphan"));
}

TEST(GraphRules, BrokenWaiversAreFindings)
{
    const vg::Result result =
        run({at("src/demo/waiver_bad.cc", "waiver_bad.cc")});
    EXPECT_EQ(countRule(result, "waiver"), 2u);
    EXPECT_TRUE(hasFinding(result, "waiver", "rationale"));
    EXPECT_TRUE(hasFinding(result, "waiver", "no-such-rule"));
}

// --- incremental cache ----------------------------------------------

namespace
{

std::vector<vg::FileInput>
fullFixtureSet()
{
    return {sinks(),
            at("src/support/clock.cc", "clock_shim.cc"),
            at("src/demo/fatal_bad.cc", "fatal_bad.cc"),
            at("src/demo/fatal_good.cc", "fatal_good.cc"),
            at("src/demo/fatal_waived.cc", "fatal_waived.cc"),
            at("src/demo/clock_bad.cc", "clock_bad.cc"),
            at("src/demo/clock_good.cc", "clock_good.cc"),
            at("src/demo/clock_waived.cc", "clock_waived.cc"),
            at("src/demo/hot_bad.cc", "hot_bad.cc"),
            at("src/demo/hot_good.cc", "hot_good.cc"),
            at("src/demo/hot_waived.cc", "hot_waived.cc"),
            at("src/demo/dead_bad.cc", "dead_bad.cc"),
            at("src/demo/dead_good.cc", "dead_good.cc"),
            at("src/demo/dead_waived.cc", "dead_waived.cc"),
            driver()};
}

std::vector<std::string>
formatted(const vg::Result &result)
{
    std::vector<std::string> out;
    for (const vg::Finding &f : result.findings)
        out.push_back(vg::formatFinding(f));
    return out;
}

} // namespace

TEST(GraphCache, WarmRunHitsEveryFile)
{
    const std::vector<vg::FileInput> files = fullFixtureSet();
    const vg::Result cold = run(files);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, files.size());

    const vg::Result warm = run(files, cold.newCacheText);
    EXPECT_EQ(warm.cacheHits, files.size());
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(formatted(warm), formatted(cold));
    EXPECT_EQ(warm.newCacheText, cold.newCacheText);
}

TEST(GraphCache, OnlyChangedFileIsRelexed)
{
    std::vector<vg::FileInput> files = fullFixtureSet();
    const vg::Result cold = run(files);
    // orphan(), plus the uncalled panic()/warnLimited() sink stubs.
    ASSERT_EQ(countRule(cold, "dead-symbol"), 3u);

    for (vg::FileInput &f : files)
        if (f.path == "src/demo/dead_bad.cc")
            f.content += "\nnamespace viva::demo {\n"
                         "int orphanTwo() { return 6; }\n"
                         "}\n";
    const vg::Result warm = run(files, cold.newCacheText);
    EXPECT_EQ(warm.cacheHits, files.size() - 1);
    EXPECT_EQ(warm.cacheMisses, 1u);
    EXPECT_EQ(countRule(warm, "dead-symbol"), 4u);
    EXPECT_TRUE(hasFinding(warm, "dead-symbol", "orphanTwo"));
}

TEST(GraphCache, CorruptCacheFallsBackToCold)
{
    std::map<std::string, vg::FileFacts> parsed;
    EXPECT_FALSE(vg::parseFactsCache("not a cache", parsed));
    EXPECT_TRUE(parsed.empty());
    EXPECT_FALSE(
        vg::parseFactsCache("viva-graph-cache-1\nF bogus", parsed));

    const std::vector<vg::FileInput> files = fullFixtureSet();
    const vg::Result result =
        run(files, "viva-graph-cache-1\nF bogus");
    EXPECT_EQ(result.cacheHits, 0u);
    EXPECT_EQ(result.cacheMisses, files.size());
}

TEST(GraphCache, SerializeRoundTrips)
{
    const vg::FileFacts facts =
        vg::extractFacts(at("src/demo/overload.cc", "overload.cc"));
    const std::string text = vg::serializeFacts({facts});
    std::map<std::string, vg::FileFacts> parsed;
    ASSERT_TRUE(vg::parseFactsCache(text, parsed));
    ASSERT_EQ(parsed.size(), 1u);
    const vg::FileFacts &back = parsed.at("src/demo/overload.cc");
    EXPECT_EQ(back.hash, facts.hash);
    EXPECT_EQ(back.symbols.size(), facts.symbols.size());
    EXPECT_EQ(vg::serializeFacts({back}), text);
}

// --- byte-stable output ---------------------------------------------

TEST(GraphOutput, JsonAndDotIdenticalAcrossJobs)
{
    const std::string rules = "layer support src/support/\n"
                              "layer demo    src/demo/\n"
                              "layer tests   tests/\n"
                              "allow demo  -> support\n"
                              "allow tests -> *\n";
    const std::vector<vg::FileInput> files = fullFixtureSet();

    vg::Options serial;
    serial.rulesText = rules;
    serial.jobs = 1;
    vg::Options threaded;
    threaded.rulesText = rules;
    threaded.jobs = 4;

    const vg::Result a = vg::runGraph(files, serial);
    const vg::Result b = vg::runGraph(files, threaded);
    EXPECT_EQ(vg::formatJson(a), vg::formatJson(b));
    EXPECT_EQ(vg::formatDot(a), vg::formatDot(b));
    EXPECT_EQ(a.newCacheText, b.newCacheText);

    // The demo layer calls into support (fatal, the clock shim).
    EXPECT_NE(vg::formatDot(a).find("demo"), std::string::npos);
    EXPECT_NE(vg::formatDot(a).find("\"demo\" -> \"support\""),
              std::string::npos);
}
