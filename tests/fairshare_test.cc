/**
 * @file
 * Tests for the max-min fair-share solver, including parameterized
 * property tests on random instances: feasibility (no resource over
 * capacity), max-min optimality (every flow is blocked by a saturated
 * resource), and scale invariance.
 */

#include <gtest/gtest.h>

#include "sim/fairshare.hh"
#include "support/random.hh"

using viva::sim::FlowSpec;
using viva::sim::maxMinFairShare;

namespace
{

std::vector<FlowSpec>
flowsOf(std::initializer_list<std::vector<std::uint32_t>> specs)
{
    std::vector<FlowSpec> out;
    for (const auto &s : specs)
        out.push_back({s});
    return out;
}

} // namespace

TEST(FairShare, EmptyInstance)
{
    EXPECT_TRUE(maxMinFairShare({10.0}, {}).empty());
}

TEST(FairShare, SingleFlowGetsFullCapacity)
{
    auto rates = maxMinFairShare({10.0}, flowsOf({{0}}));
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0], 10.0);
}

TEST(FairShare, EqualSplitOnOneResource)
{
    auto rates = maxMinFairShare({12.0}, flowsOf({{0}, {0}, {0}}));
    for (double r : rates)
        EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(FairShare, MultiLinkFlowLimitedByBottleneck)
{
    // Flow 0 crosses both links; flow 1 only the big one.
    auto rates = maxMinFairShare({10.0, 100.0}, flowsOf({{0, 1}, {1}}));
    EXPECT_DOUBLE_EQ(rates[0], 10.0);   // capped by resource 0
    EXPECT_DOUBLE_EQ(rates[1], 90.0);   // rest of resource 1
}

TEST(FairShare, ClassicThreeFlowExample)
{
    // Two links of capacity 1; flow A uses both, B uses link0, C link1.
    // Max-min: A = B = C = 1/2.
    auto rates = maxMinFairShare({1.0, 1.0}, flowsOf({{0, 1}, {0}, {1}}));
    EXPECT_DOUBLE_EQ(rates[0], 0.5);
    EXPECT_DOUBLE_EQ(rates[1], 0.5);
    EXPECT_DOUBLE_EQ(rates[2], 0.5);
}

TEST(FairShare, AsymmetricBottlenecks)
{
    // link0 cap 2 shared by f0,f1; link1 cap 10 shared by f1,f2.
    // f0 = f1 = 1 (link0 saturates), then f2 = 9.
    auto rates = maxMinFairShare({2.0, 10.0}, flowsOf({{0}, {0, 1}, {1}}));
    EXPECT_DOUBLE_EQ(rates[0], 1.0);
    EXPECT_DOUBLE_EQ(rates[1], 1.0);
    EXPECT_DOUBLE_EQ(rates[2], 9.0);
}

TEST(FairShare, UnusedResourceIgnored)
{
    auto rates = maxMinFairShare({5.0, 7.0}, flowsOf({{0}}));
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
}

TEST(FairShare, RepeatedResourceInOneFlow)
{
    // The same link twice in one flow spec counts twice (a flow that
    // traverses a link twice consumes double).
    auto rates = maxMinFairShare({10.0}, flowsOf({{0, 0}}));
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
}

TEST(FairShareDeath, FlowWithNoResourcesAsserts)
{
    EXPECT_DEATH(maxMinFairShare({1.0}, flowsOf({{}})), "no resource");
}

// --- property tests over random instances ------------------------------------

struct RandomInstance
{
    std::vector<double> capacity;
    std::vector<FlowSpec> flows;
};

class FairShareProperty : public ::testing::TestWithParam<int>
{
  protected:
    RandomInstance
    makeInstance(int seed)
    {
        viva::support::Rng rng(seed);
        RandomInstance inst;
        std::size_t resources = 2 + rng.index(12);
        std::size_t flows = 1 + rng.index(24);
        for (std::size_t r = 0; r < resources; ++r)
            inst.capacity.push_back(rng.uniform(1.0, 100.0));
        for (std::size_t f = 0; f < flows; ++f) {
            FlowSpec spec;
            std::size_t uses = 1 + rng.index(std::min<std::size_t>(
                                       resources, 5));
            for (std::size_t u = 0; u < uses; ++u)
                spec.resources.push_back(
                    std::uint32_t(rng.index(resources)));
            inst.flows.push_back(std::move(spec));
        }
        return inst;
    }
};

TEST_P(FairShareProperty, FeasibleAndMaxMin)
{
    RandomInstance inst = makeInstance(GetParam());
    auto rates = maxMinFairShare(inst.capacity, inst.flows);
    ASSERT_EQ(rates.size(), inst.flows.size());

    // Load per resource.
    std::vector<double> load(inst.capacity.size(), 0.0);
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
        EXPECT_GT(rates[f], 0.0) << "flow " << f << " starved";
        for (auto r : inst.flows[f].resources)
            load[r] += rates[f];
    }

    // Feasibility: no resource above capacity (tolerance for fp).
    for (std::size_t r = 0; r < load.size(); ++r)
        EXPECT_LE(load[r], inst.capacity[r] * (1.0 + 1e-9))
            << "resource " << r << " overloaded";

    // Max-min optimality: every flow crosses at least one resource that
    // is saturated (otherwise its rate could grow).
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
        bool blocked = false;
        for (auto r : inst.flows[f].resources) {
            if (load[r] >= inst.capacity[r] * (1.0 - 1e-6)) {
                blocked = true;
                break;
            }
        }
        EXPECT_TRUE(blocked) << "flow " << f << " not max-min blocked";
    }
}

TEST_P(FairShareProperty, ScaleInvariance)
{
    RandomInstance inst = makeInstance(GetParam());
    auto rates = maxMinFairShare(inst.capacity, inst.flows);

    std::vector<double> doubled = inst.capacity;
    for (double &c : doubled)
        c *= 2.0;
    auto rates2 = maxMinFairShare(doubled, inst.flows);
    for (std::size_t f = 0; f < rates.size(); ++f)
        EXPECT_NEAR(rates2[f], 2.0 * rates[f],
                    1e-9 * std::max(1.0, rates[f]));
}

TEST_P(FairShareProperty, PermutationEquivariance)
{
    RandomInstance inst = makeInstance(GetParam());
    auto rates = maxMinFairShare(inst.capacity, inst.flows);

    // Reverse the flow order: rates must follow their flows.
    std::vector<FlowSpec> reversed(inst.flows.rbegin(), inst.flows.rend());
    auto rates_rev = maxMinFairShare(inst.capacity, reversed);
    for (std::size_t f = 0; f < rates.size(); ++f)
        EXPECT_NEAR(rates_rev[rates.size() - 1 - f], rates[f], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FairShareProperty,
                         ::testing::Range(1, 33));
