/**
 * @file
 * Tests for the anomaly detectors and the CSV export.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <algorithm>

#include "agg/anomaly.hh"
#include "app/commands.hh"
#include "app/session.hh"
#include "trace/builder.hh"

namespace va = viva::agg;
namespace vap = viva::app;
namespace vt = viva::trace;

namespace
{

/** A cluster of n hosts with uniform power, one deviant. */
vt::Trace
spatialFixture(std::size_t n, double normal, double deviant)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("c", vt::ContainerKind::Cluster);
    std::vector<vt::ContainerId> hosts;
    for (std::size_t i = 0; i < n; ++i)
        hosts.push_back(b.host("h" + std::to_string(i)));
    b.endGroup();
    vt::Trace &t = b.trace();
    for (std::size_t i = 0; i < n; ++i)
        t.variable(hosts[i], power).set(0.0, i == 0 ? deviant : normal);
    return b.take();
}

} // namespace

TEST(SpatialAnomaly, FlagsTheDeviantSibling)
{
    vt::Trace trace = spatialFixture(10, 100.0, 1000.0);
    va::HierarchyCut cut(trace);
    auto power = trace.findMetric("power");

    auto findings =
        va::findSpatialAnomalies(trace, cut, power, {0.0, 1.0});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(trace.container(findings[0].node).name, "h0");
    EXPECT_DOUBLE_EQ(findings[0].value, 1000.0);
    EXPECT_DOUBLE_EQ(findings[0].expected, 100.0);
    EXPECT_GT(findings[0].score, 3.0);
    EXPECT_EQ(findings[0].kind, va::Anomaly::Kind::Spatial);
}

TEST(SpatialAnomaly, LowOutlierGetsNegativeScore)
{
    vt::Trace trace = spatialFixture(10, 100.0, 1.0);
    va::HierarchyCut cut(trace);
    auto findings = va::findSpatialAnomalies(
        trace, cut, trace.findMetric("power"), {0.0, 1.0});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_LT(findings[0].score, -3.0);
}

TEST(SpatialAnomaly, UniformGroupIsClean)
{
    vt::Trace trace = spatialFixture(10, 100.0, 100.0);
    va::HierarchyCut cut(trace);
    EXPECT_TRUE(va::findSpatialAnomalies(trace, cut,
                                         trace.findMetric("power"),
                                         {0.0, 1.0})
                    .empty());
}

TEST(SpatialAnomaly, SmallGroupsSkipped)
{
    vt::Trace trace = spatialFixture(3, 100.0, 1000.0);
    va::HierarchyCut cut(trace);
    va::AnomalyOptions options;
    options.minSiblings = 4;
    EXPECT_TRUE(va::findSpatialAnomalies(trace, cut,
                                         trace.findMetric("power"),
                                         {0.0, 1.0}, options)
                    .empty());
}

TEST(SpatialAnomaly, RobustToASecondHugeOutlier)
{
    // Two extreme values: a plain z-score dilutes, a robust one holds.
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("c", vt::ContainerKind::Cluster);
    std::vector<vt::ContainerId> hosts;
    for (int i = 0; i < 12; ++i)
        hosts.push_back(b.host("h" + std::to_string(i)));
    b.endGroup();
    vt::Trace &t = b.trace();
    for (int i = 0; i < 12; ++i)
        t.variable(hosts[i], power)
            .set(0.0, i == 0 ? 5000.0 : (i == 1 ? 4000.0 : 100.0));
    vt::Trace trace = b.take();

    va::HierarchyCut cut(trace);
    auto findings = va::findSpatialAnomalies(
        trace, cut, trace.findMetric("power"), {0.0, 1.0});
    EXPECT_EQ(findings.size(), 2u);  // both flagged, not masked
}

TEST(TemporalAnomaly, FlagsTheSpikeSlice)
{
    vt::TraceBuilder b;
    auto used = b.powerUsedMetric();
    auto h = b.host("h");
    vt::Trace &t = b.trace();
    // Flat at 10 over [0, 16) except a spike to 500 in [7, 8).
    t.variable(h, used).set(0.0, 10.0);
    t.variable(h, used).set(7.0, 500.0);
    t.variable(h, used).set(8.0, 10.0);
    t.variable(h, used).set(16.0, 10.0);
    vt::Trace trace = b.take();

    va::HierarchyCut cut(trace);
    va::AnomalyOptions options;
    options.slices = 16;
    auto findings = va::findTemporalAnomalies(
        trace, cut, used, {0.0, 16.0}, options);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_DOUBLE_EQ(findings[0].when.begin, 7.0);
    EXPECT_DOUBLE_EQ(findings[0].when.end, 8.0);
    EXPECT_EQ(findings[0].kind, va::Anomaly::Kind::Temporal);
    EXPECT_GT(findings[0].score, 3.0);
}

TEST(TemporalAnomaly, ConstantSignalIsClean)
{
    vt::TraceBuilder b;
    auto used = b.powerUsedMetric();
    auto h = b.host("h");
    b.trace().variable(h, used).set(0.0, 42.0);
    b.trace().variable(h, used).set(16.0, 42.0);
    vt::Trace trace = b.take();
    va::HierarchyCut cut(trace);
    EXPECT_TRUE(
        va::findTemporalAnomalies(trace, cut, used, {0.0, 16.0})
            .empty());
}

TEST(Anomaly, DescribeMentionsEverything)
{
    vt::Trace trace = spatialFixture(10, 100.0, 1000.0);
    va::HierarchyCut cut(trace);
    auto power = trace.findMetric("power");
    auto findings =
        va::findSpatialAnomalies(trace, cut, power, {0.0, 1.0});
    ASSERT_FALSE(findings.empty());
    std::string text = va::describeAnomaly(trace, findings[0], power);
    EXPECT_NE(text.find("spatial"), std::string::npos);
    EXPECT_NE(text.find("h0"), std::string::npos);
    EXPECT_NE(text.find("power"), std::string::npos);
}

TEST(Anomaly, SortedByScoreMagnitude)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("c", vt::ContainerKind::Cluster);
    std::vector<vt::ContainerId> hosts;
    for (int i = 0; i < 12; ++i)
        hosts.push_back(b.host("h" + std::to_string(i)));
    b.endGroup();
    vt::Trace &t = b.trace();
    for (int i = 0; i < 12; ++i)
        t.variable(hosts[i], power)
            .set(0.0, i == 0 ? 2500.0 : (i == 1 ? 5000.0 : 100.0));
    vt::Trace trace = b.take();
    va::HierarchyCut cut(trace);
    auto findings = va::findSpatialAnomalies(
        trace, cut, trace.findMetric("power"), {0.0, 1.0});
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_GT(std::abs(findings[0].score), std::abs(findings[1].score));
    EXPECT_EQ(trace.container(findings[0].node).name, "h1");
}

// --- session + command plumbing ------------------------------------------------

TEST(SessionAnomalies, FindsAndDescribes)
{
    vap::Session session(spatialFixture(10, 100.0, 1000.0));
    auto findings = session.findAnomalies("power");
    ASSERT_FALSE(findings.empty());
    EXPECT_NE(findings[0].find("h0"), std::string::npos);

    auto bad = session.findAnomalies("nope");
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0].rfind("error:", 0), 0u);
}

TEST(CommandsAnomalies, ReportAndErrors)
{
    vap::Session session(spatialFixture(10, 100.0, 1000.0));
    vap::CommandInterpreter cli(session);
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("anomalies power", out));
    EXPECT_NE(out.str().find("h0"), std::string::npos);
    EXPECT_FALSE(cli.execute("anomalies nope", out));

    std::ostringstream out2;
    EXPECT_TRUE(cli.execute("anomalies power 1000", out2));
    EXPECT_NE(out2.str().find("no anomalies"), std::string::npos);
}

// --- CSV export -------------------------------------------------------------------

TEST(CsvExport, HeaderAndRows)
{
    vt::Trace trace = vt::makeFigure1Trace();
    va::HierarchyCut cut(trace);
    auto power = trace.findMetric("power");
    auto bw = trace.findMetric("bandwidth");
    va::View view = va::buildView(trace, cut, {0.0, 4.0}, {power, bw},
                                  va::SpatialOp::Sum, true);
    std::ostringstream out;
    va::writeViewCsv(view, trace, out);
    std::string csv = out.str();

    EXPECT_NE(csv.find("container,kind,aggregated,leaves"),
              std::string::npos);
    EXPECT_NE(csv.find("power_variance"), std::string::npos);
    EXPECT_NE(csv.find("\"HostA\",host,0,1,0,4,100"),
              std::string::npos);
    // 1 header + 3 node rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(CsvExport, SessionWritesFile)
{
    vap::Session session(vt::makeFigure1Trace());
    std::string path =
        (std::filesystem::temp_directory_path() / "viva_view.csv")
            .string();
    ASSERT_TRUE(session.exportCsv(path).ok());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("container,kind"), std::string::npos);
}

TEST(CsvExport, CommandWorks)
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    std::string path =
        (std::filesystem::temp_directory_path() / "viva_cmd.csv")
            .string();
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("export-csv " + path, out));
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(SpatialAnomaly, ComparesOnlySimilarEntities)
{
    // Two sites, clusters of different power; routers and links must
    // never enter the clusters' comparison group.
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    std::vector<vt::ContainerId> clusters;
    for (int s = 0; s < 2; ++s) {
        b.beginGroup("site" + std::to_string(s),
                     vt::ContainerKind::Site);
        b.router("r" + std::to_string(s));
        for (int c = 0; c < 3; ++c) {
            b.beginGroup("c" + std::to_string(s) + std::to_string(c),
                         vt::ContainerKind::Cluster);
            clusters.push_back(b.currentGroup());
            auto h = b.host("h" + std::to_string(s) +
                            std::to_string(c));
            b.trace().variable(h, power).set(
                0.0, (s == 1 && c == 2) ? 5.0 : 100.0);
            b.endGroup();
        }
        b.endGroup();
    }
    vt::Trace trace = b.take();

    va::HierarchyCut cut(trace);
    cut.aggregateToDepth(2);  // all six clusters visible, cross-site
    va::AnomalyOptions options;
    options.minSiblings = 4;
    auto findings = va::findSpatialAnomalies(
        trace, cut, trace.findMetric("power"), {0.0, 1.0}, options);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(trace.container(findings[0].node).name, "c12");

    // Per-parent grouping cannot see it (only 3 siblings per site).
    options.perParent = true;
    EXPECT_TRUE(va::findSpatialAnomalies(trace, cut,
                                         trace.findMetric("power"),
                                         {0.0, 1.0}, options)
                    .empty());
}
