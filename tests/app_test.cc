/**
 * @file
 * Tests for the session façade and the command interpreter -- the
 * headless equivalents of every GUI interaction the paper describes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/commands.hh"
#include "app/session.hh"
#include "layout/metrics.hh"
#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "trace/builder.hh"

namespace va = viva::agg;
namespace vap = viva::app;
namespace vl = viva::layout;
namespace vp = viva::platform;
namespace vt = viva::trace;

namespace
{

/** A session over the mirrored two-cluster platform (no simulation). */
vap::Session
makePlatformSession()
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::mirrorPlatform(p, t);
    return vap::Session(std::move(t));
}

std::string
tempDir()
{
    auto dir = std::filesystem::temp_directory_path() / "viva_app_test";
    std::filesystem::create_directories(dir);
    return dir.string();
}

} // namespace

TEST(Session, InitialStateCoversWholeSpan)
{
    vap::Session s(vt::makeFigure1Trace());
    EXPECT_DOUBLE_EQ(s.timeSlice().begin, s.span().begin);
    EXPECT_DOUBLE_EQ(s.timeSlice().end, s.span().end);
    // Fig. 1 trace: three leaves visible, all in the layout.
    EXPECT_EQ(s.cut().visibleCount(), 3u);
    EXPECT_EQ(s.layoutGraph().nodeCount(), 3u);
    EXPECT_EQ(s.layoutGraph().edgeCount(), 2u);
}

TEST(Session, SliceSelection)
{
    vap::Session s(vt::makeFigure1Trace());
    s.setSliceOf(va::SliceIndex{1}, 3);
    EXPECT_DOUBLE_EQ(s.timeSlice().begin, 4.0);
    EXPECT_DOUBLE_EQ(s.timeSlice().end, 8.0);
    s.setTimeSlice({2.0, 6.0});
    EXPECT_DOUBLE_EQ(s.timeSlice().begin, 2.0);
}

TEST(Session, ViewReflectsSlice)
{
    vap::Session s(vt::makeFigure1Trace());
    auto host_a = s.trace().findByPath("HostA");
    auto power = s.trace().findMetric("power");

    s.setTimeSlice({0.0, 4.0});
    EXPECT_DOUBLE_EQ(s.view().valueOf(host_a, power), 100.0);
    s.setTimeSlice({4.0, 8.0});
    EXPECT_DOUBLE_EQ(s.view().valueOf(host_a, power), 10.0);
}

TEST(Session, AggregateByNameAndPath)
{
    vap::Session s = makePlatformSession();
    std::size_t before = s.cut().visibleCount();

    ASSERT_TRUE(s.aggregate("adonis"));  // unique simple name
    EXPECT_LT(s.cut().visibleCount(), before);
    EXPECT_EQ(s.layoutGraph().nodeCount(), s.cut().visibleCount());

    ASSERT_TRUE(s.aggregate("hpc/testbed/griffon"));  // full path
    EXPECT_FALSE(s.aggregate("no-such-thing"));
}

TEST(Session, LayoutFollowsTheCut)
{
    vap::Session s = makePlatformSession();
    s.aggregateToDepth(3);  // cluster level
    EXPECT_EQ(s.layoutGraph().nodeCount(), s.cut().visibleCount());
    s.resetAggregation();
    EXPECT_EQ(s.layoutGraph().nodeCount(), s.cut().visibleCount());
}

TEST(Session, AggregationPlacesGroupAtCentroid)
{
    vap::Session s = makePlatformSession();
    s.stabilizeLayout(200).value();

    // Centroid of adonis members before the collapse.
    auto adonis = s.trace().findByName("adonis");
    ASSERT_NE(adonis, vt::kNoContainer);
    vl::Vec2 centroid;
    std::size_t count = 0;
    for (auto id : s.trace().subtree(adonis)) {
        vl::NodeId n = s.layoutGraph().findKey(id.value());
        if (n != vl::kNoNode) {
            centroid += s.layoutGraph().node(n).position;
            ++count;
        }
    }
    ASSERT_GT(count, 0u);
    centroid = centroid / double(count);

    ASSERT_TRUE(s.aggregate("adonis"));
    vl::NodeId agg = s.layoutGraph().findKey(adonis.value());
    ASSERT_NE(agg, vl::kNoNode);
    EXPECT_NEAR(s.layoutGraph().node(agg).position.x, centroid.x, 1e-9);
    EXPECT_NEAR(s.layoutGraph().node(agg).position.y, centroid.y, 1e-9);
    // The aggregated node carries the summed charge of its leaves.
    EXPECT_GT(s.layoutGraph().node(agg).charge, 10.0);
}

TEST(Session, SmoothTransitionAcrossScales)
{
    vap::Session s = makePlatformSession();
    s.stabilizeLayout(400).value();
    double extent =
        std::sqrt(vl::boundingBoxArea(s.layoutGraph())) + 1e-9;
    auto before = vl::snapshotPositions(s.layoutGraph());

    s.aggregate("adonis");
    s.stabilizeLayout(100).value();
    auto after = vl::snapshotPositions(s.layoutGraph());

    // Nodes surviving the transition barely move: the paper's smooth
    // layout claim, quantified.
    auto d = vl::displacement(before, after);
    ASSERT_GT(d.count(), 0u);
    EXPECT_LT(d.mean(), extent * 0.5);
}

TEST(Session, DisaggregationFansOutAroundParent)
{
    vap::Session s = makePlatformSession();
    s.aggregate("adonis");
    s.stabilizeLayout(100).value();
    auto adonis = s.trace().findByName("adonis");
    vl::Vec2 parent_pos =
        s.layoutGraph().node(s.layoutGraph().findKey(adonis.value())).position;

    ASSERT_TRUE(s.disaggregate("adonis"));
    // Children spawned near the parent's last position.
    for (auto id : s.trace().container(adonis).children) {
        vl::NodeId n = s.layoutGraph().findKey(id.value());
        if (n == vl::kNoNode)
            continue;  // grandchildren case
        EXPECT_LT(vl::distance(s.layoutGraph().node(n).position,
                               parent_pos),
                  200.0);
    }
}

TEST(Session, MoveNodeDragsAndReleases)
{
    vap::Session s(vt::makeFigure1Trace());
    ASSERT_TRUE(s.moveNode("HostA", 500.0, 500.0));
    auto id = s.trace().findByPath("HostA");
    vl::NodeId n = s.layoutGraph().findKey(id.value());
    // Released after the move: not pinned, but near the target.
    EXPECT_FALSE(s.layoutGraph().node(n).pinned);
    EXPECT_FALSE(s.moveNode("nope", 0, 0));
}

TEST(Session, PinNode)
{
    vap::Session s(vt::makeFigure1Trace());
    ASSERT_TRUE(s.pinNode("HostA", true));
    auto id = s.trace().findByPath("HostA");
    EXPECT_TRUE(s.layoutGraph().node(s.layoutGraph().findKey(id.value())).pinned);
    ASSERT_TRUE(s.pinNode("HostA", false));
    EXPECT_FALSE(
        s.layoutGraph().node(s.layoutGraph().findKey(id.value())).pinned);
}

TEST(Session, SceneAndAsciiRender)
{
    vap::Session s(vt::makeFigure1Trace());
    s.stabilizeLayout(200).value();
    viva::viz::Scene scene = s.scene();
    EXPECT_EQ(scene.nodes.size(), 3u);
    std::string text = s.renderAscii();
    EXPECT_FALSE(text.empty());
}

TEST(Session, RenderSvgWritesFile)
{
    vap::Session s(vt::makeFigure1Trace());
    s.stabilizeLayout(100).value();
    std::string path = tempDir() + "/fig1.svg";
    ASSERT_TRUE(s.renderSvg(path, "test render").ok());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("</svg>"), std::string::npos);
}

TEST(Session, AnimateWritesFrames)
{
    vap::Session s(vt::makeFigure1Trace());
    std::string dir = tempDir() + "/anim";
    auto frames = s.animate(3, dir, "f", 20);
    ASSERT_TRUE(frames.ok()) << frames.error().toString();
    EXPECT_EQ(*frames, 3u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/f000.svg"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/f002.svg"));
    // The slice is left at the last frame.
    EXPECT_DOUBLE_EQ(s.timeSlice().end, s.span().end);
}

TEST(Session, StatsViewExposesIndicators)
{
    vap::Session s = makePlatformSession();
    s.aggregateToDepth(3);
    va::View v = s.view(/*with_stats=*/true);
    bool found = false;
    for (const auto &n : v.nodes) {
        if (!n.aggregated)
            continue;
        ASSERT_EQ(n.stats.size(), v.metrics.size());
        found = true;
    }
    EXPECT_TRUE(found);
}

// --- command interpreter ---------------------------------------------------------

TEST(Commands, SliceAndInfo)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("slice 2 6", out));
    EXPECT_DOUBLE_EQ(s.timeSlice().begin, 2.0);
    EXPECT_TRUE(cli.execute("info", out));
    EXPECT_NE(out.str().find("slice [2, 6)"), std::string::npos);
}

TEST(Commands, SliceOfValidation)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("slice-of 1 4", out));
    EXPECT_FALSE(cli.execute("slice-of 4 4", out));
    EXPECT_FALSE(cli.execute("slice-of 1 0", out));
    EXPECT_FALSE(cli.execute("slice 6 2", out));
}

TEST(Commands, AggregationRoundTrip)
{
    vap::Session s = makePlatformSession();
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    std::size_t leaves = s.cut().visibleCount();
    EXPECT_TRUE(cli.execute("aggregate adonis", out));
    EXPECT_TRUE(cli.execute("disaggregate adonis", out));
    EXPECT_EQ(s.cut().visibleCount(), leaves);
    EXPECT_TRUE(cli.execute("depth 3", out));
    EXPECT_TRUE(cli.execute("reset", out));
    EXPECT_FALSE(cli.execute("aggregate bogus", out));
}

TEST(Commands, SlidersReachParams)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("charge 1234", out));
    EXPECT_TRUE(cli.execute("spring 0.5", out));
    EXPECT_TRUE(cli.execute("damping 0.7", out));
    EXPECT_DOUBLE_EQ(s.forceParams().charge, 1234.0);
    EXPECT_DOUBLE_EQ(s.forceParams().spring, 0.5);
    EXPECT_DOUBLE_EQ(s.forceParams().damping, 0.7);
    EXPECT_TRUE(cli.execute("scale power 2.0", out));
    EXPECT_DOUBLE_EQ(
        s.scaling().slider(s.trace().findMetric("power")), 2.0);
    EXPECT_FALSE(cli.execute("scale nope 2.0", out));
}

TEST(Commands, NodesListsValues)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("nodes", out));
    EXPECT_NE(out.str().find("HostA"), std::string::npos);
    EXPECT_NE(out.str().find("power="), std::string::npos);
}

TEST(Commands, UnknownAndMalformed)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    EXPECT_FALSE(cli.execute("frobnicate", out));
    EXPECT_FALSE(cli.execute("slice 1", out));
    EXPECT_FALSE(cli.execute("slice a b", out));
    EXPECT_TRUE(cli.execute("", out));
    EXPECT_TRUE(cli.execute("# comment", out));
    EXPECT_TRUE(cli.execute("help", out));
}

TEST(Commands, ScriptExecution)
{
    vap::Session s = makePlatformSession();
    vap::CommandInterpreter cli(s);
    std::istringstream script(
        "# an analysis script\n"
        "slice-of 0 2\n"
        "depth 3\n"
        "stabilize 50\n"
        "ascii\n"
        "info\n");
    std::ostringstream out;
    EXPECT_EQ(cli.executeScript(script, out), 6u);
}

TEST(Commands, ScriptStopsAtFirstError)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::istringstream script("info\nbogus\ninfo\n");
    std::ostringstream out;
    EXPECT_EQ(cli.executeScript(script, out), 1u);
}

TEST(Commands, RenderWritesSvg)
{
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::string path = tempDir() + "/cmd.svg";
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("render " + path + " my title", out));
    EXPECT_TRUE(std::filesystem::exists(path));
}
