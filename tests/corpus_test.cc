/**
 * @file
 * The corrupted-trace corpus: a deterministic generator that mutates
 * well-formed serialized traces -- truncation, byte flips, field drops,
 * line duplication -- in both on-disk formats, and the robustness
 * properties every mutant must satisfy. A reader faced with any mutant
 * must either accept it or return a structured support::Error with a
 * file:line context chain; it must never crash, assert or fatal(). A
 * Session::load that rejects a mutant must leave the session bitwise
 * unchanged (proven by stateDigest()).
 *
 * The corpus is seed-driven through support::Rng, so a failing mutant
 * is reproducible from the (format, kind, seed) triple printed in the
 * assertion message.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/checkpoint.hh"
#include "app/session.hh"
#include "support/error.hh"
#include "support/random.hh"
#include "trace/builder.hh"
#include "trace/io.hh"
#include "trace/paje.hh"

namespace vap = viva::app;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

enum class Format
{
    Native,
    Paje,
};

enum class Mutation
{
    Truncate,       ///< cut the document at a random byte
    ByteFlip,       ///< XOR a handful of random bytes
    FieldDrop,      ///< delete one whitespace-separated token of a line
    DuplicateLine,  ///< repeat a random line (duplicated definitions)
};

constexpr Format kFormats[] = {Format::Native, Format::Paje};
constexpr Mutation kMutations[] = {Mutation::Truncate, Mutation::ByteFlip,
                                   Mutation::FieldDrop,
                                   Mutation::DuplicateLine};
constexpr std::uint64_t kSeedsPerCell = 30;  // 2 x 4 x 30 = 240 mutants

const char *
formatName(Format f)
{
    return f == Format::Native ? "native" : "paje";
}

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::Truncate: return "truncate";
      case Mutation::ByteFlip: return "byte-flip";
      case Mutation::FieldDrop: return "field-drop";
      case Mutation::DuplicateLine: return "duplicate-line";
    }
    return "?";
}

/** The pristine document a corpus cell starts from. */
std::string
pristine(Format f)
{
    std::ostringstream out;
    if (f == Format::Native)
        vt::writeTrace(vt::makeFigure1Trace(), out);
    else
        vt::writePajeTrace(vt::makeFigure1Trace(), out);
    return out.str();
}

std::vector<std::string>
splitLines(const std::string &doc)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : doc) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string doc;
    for (const std::string &l : lines) {
        doc += l;
        doc += '\n';
    }
    return doc;
}

/** Apply one seeded mutation; always changes the document. */
std::string
mutate(const std::string &doc, Mutation kind, std::uint64_t seed)
{
    vs::Rng rng(seed * 2654435761ull + std::uint64_t(kind) + 1);
    switch (kind) {
      case Mutation::Truncate: {
          // Cut anywhere, including mid-line and mid-token.
          std::size_t at = rng.index(doc.size());
          return doc.substr(0, at);
      }
      case Mutation::ByteFlip: {
          std::string out = doc;
          std::size_t flips = 1 + rng.index(8);
          for (std::size_t i = 0; i < flips; ++i) {
              std::size_t at = rng.index(out.size());
              out[at] = char(out[at] ^ char(1 << rng.index(7)));
          }
          return out;
      }
      case Mutation::FieldDrop: {
          std::vector<std::string> lines = splitLines(doc);
          std::size_t at = rng.index(lines.size());
          std::vector<std::string> tokens;
          std::istringstream in(lines[at]);
          std::string tok;
          while (in >> tok)
              tokens.push_back(tok);
          if (tokens.size() > 1)
              tokens.erase(tokens.begin() +
                           std::ptrdiff_t(rng.index(tokens.size())));
          else
              lines[at].clear();
          std::string rebuilt;
          for (std::size_t i = 0; i < tokens.size(); ++i) {
              if (i)
                  rebuilt += ' ';
              rebuilt += tokens[i];
          }
          lines[at] = rebuilt;
          return joinLines(lines);
      }
      case Mutation::DuplicateLine: {
          std::vector<std::string> lines = splitLines(doc);
          std::size_t at = rng.index(lines.size());
          lines.insert(lines.begin() + std::ptrdiff_t(at), lines[at]);
          return joinLines(lines);
      }
    }
    return doc;
}

/**
 * Feed one mutant to its reader. Crashes/aborts fail the whole suite;
 * rejections must carry a structured, contextful Error.
 * @return true when the mutant was accepted
 */
bool
digestOne(Format f, const std::string &mutant, const std::string &label)
{
    std::istringstream in(mutant);
    if (f == Format::Native) {
        auto result = vt::readTrace(in);
        if (result.ok())
            return true;
        EXPECT_FALSE(result.error().context().empty()) << label;
        EXPECT_FALSE(result.error().toString().empty()) << label;
        return false;
    }
    auto result = vt::readPajeTrace(in);
    if (result.ok())
        return true;
    EXPECT_FALSE(result.error().context().empty()) << label;
    EXPECT_FALSE(result.error().toString().empty()) << label;
    return false;
}

std::filesystem::path
corpusDir()
{
    auto dir = std::filesystem::temp_directory_path() / "viva_corpus_test";
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

/** The corpus is a pure function of its seeds. */
TEST(Corpus, GeneratorIsDeterministic)
{
    std::string doc = pristine(Format::Native);
    for (Mutation m : kMutations)
        for (std::uint64_t seed = 0; seed < 5; ++seed)
            EXPECT_EQ(mutate(doc, m, seed), mutate(doc, m, seed));
}

/** Every mutation actually perturbs the document. */
TEST(Corpus, MutantsDifferFromThePristineDocument)
{
    for (Format f : kFormats) {
        std::string doc = pristine(f);
        std::size_t changed = 0, total = 0;
        for (Mutation m : kMutations) {
            for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
                ++total;
                if (mutate(doc, m, seed) != doc)
                    ++changed;
            }
        }
        // Duplicating a blank line can be a no-op; nearly all others
        // must differ.
        EXPECT_GE(changed, total - 5) << formatName(f);
    }
}

/**
 * The acceptance gate: >= 200 deterministic mutants, in both formats,
 * and not one of them crashes a reader. Every rejection is a
 * structured Error.
 */
TEST(Corpus, NoMutantCrashesAReader)
{
    std::size_t total = 0, accepted = 0, rejected = 0;
    for (Format f : kFormats) {
        std::string doc = pristine(f);
        ASSERT_FALSE(doc.empty());
        for (Mutation m : kMutations) {
            for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
                std::string label = std::string(formatName(f)) + "/" +
                                    mutationName(m) + "/seed " +
                                    std::to_string(seed);
                std::string mutant = mutate(doc, m, seed);
                ++total;
                if (digestOne(f, mutant, label))
                    ++accepted;
                else
                    ++rejected;
            }
        }
    }
    EXPECT_GE(total, 200u);
    // Sanity on corpus quality: the mutations are harsh enough that a
    // good share get rejected, yet some survive (the readers are not
    // rejecting everything out of hand).
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(accepted, 0u);
}

/**
 * Session-level degradation: loading any rejected mutant from disk
 * leaves the session bitwise unchanged, and the session keeps working
 * afterwards.
 */
TEST(Corpus, FailedLoadsNeverMutateTheSession)
{
    auto dir = corpusDir();
    // Baseline: the pristine trace loaded from disk, layout settled.
    // Re-establishing it is deterministic, so the digest is a fixed
    // point we can return to after any accepted mutant.
    std::string pristinePath = (dir / "pristine.viva").string();
    ASSERT_TRUE(
        vt::writeTraceFile(vt::makeFigure1Trace(), pristinePath).ok());
    vap::Session session(vt::makeFigure1Trace());
    auto rebaseline = [&] {
        auto ok = session.load(pristinePath);
        ASSERT_TRUE(ok.ok()) << ok.error().toString();
        session.stabilizeLayout(50).value();
    };
    rebaseline();
    const std::uint64_t digest = session.stateDigest();

    std::size_t failed_loads = 0;
    for (Format f : kFormats) {
        std::string doc = pristine(f);
        const char *ext = f == Format::Native ? ".viva" : ".paje";
        for (Mutation m : kMutations) {
            // A slice of the corpus is enough here: the per-mutant
            // reader sweep above covers the full set.
            for (std::uint64_t seed = 0; seed < 8; ++seed) {
                std::string label = std::string(formatName(f)) + "/" +
                                    mutationName(m) + "/seed " +
                                    std::to_string(seed);
                auto path = dir / (std::string(formatName(f)) + "_" +
                                   mutationName(m) + "_" +
                                   std::to_string(seed) + ext);
                {
                    std::ofstream out(path);
                    out << mutate(doc, m, seed);
                }
                auto loaded = session.load(path.string());
                if (loaded.ok()) {
                    // Accepted mutants legitimately change the session;
                    // restore the baseline before the next probe.
                    rebaseline();
                    ASSERT_EQ(session.stateDigest(), digest) << label;
                    continue;
                }
                ++failed_loads;
                EXPECT_FALSE(loaded.error().context().empty()) << label;
                EXPECT_EQ(session.stateDigest(), digest)
                    << label << ": failed load mutated the session; "
                    << loaded.error().toString();
            }
        }
    }
    EXPECT_GT(failed_loads, 0u);

    // After the whole gauntlet the session still analyses and renders.
    EXPECT_TRUE(session.auditInvariants().empty());
    auto svg = session.renderSvg((dir / "after_corpus.svg").string());
    EXPECT_TRUE(svg.ok()) << svg.error().toString();
}

/** Digest changes when state actually changes (it is not a constant). */
TEST(Corpus, DigestReactsToStateChanges)
{
    vap::Session session(vt::makeFigure1Trace());
    std::uint64_t before = session.stateDigest();
    session.forceParams().charge *= 2.0;
    std::uint64_t after = session.stateDigest();
    EXPECT_NE(before, after);

    session.setSliceOf(viva::agg::SliceIndex{0}, 4);
    EXPECT_NE(session.stateDigest(), after);
}

// --- the checkpoint-file corpus ------------------------------------------------

namespace
{

enum class CkptMutation
{
    Truncate,      ///< cut the file at a random byte
    ByteFlip,      ///< XOR a handful of random bytes
    ChecksumFlip,  ///< corrupt the FNV footer only
    VersionSkew,   ///< rewrite the version digit in the magic
};

constexpr CkptMutation kCkptMutations[] = {
    CkptMutation::Truncate, CkptMutation::ByteFlip,
    CkptMutation::ChecksumFlip, CkptMutation::VersionSkew};

const char *
ckptMutationName(CkptMutation m)
{
    switch (m) {
      case CkptMutation::Truncate: return "truncate";
      case CkptMutation::ByteFlip: return "byte-flip";
      case CkptMutation::ChecksumFlip: return "checksum-flip";
      case CkptMutation::VersionSkew: return "version-skew";
    }
    return "?";
}

/**
 * Apply one seeded checkpoint mutation. Every kind guarantees a real
 * change, so (checksum + magic + exact-length enforcement) must reject
 * every mutant deterministically.
 */
std::string
mutateCkpt(const std::string &bytes, CkptMutation kind,
           std::uint64_t seed)
{
    vs::Rng rng(seed * 2654435761ull + std::uint64_t(kind) + 17);
    std::string out = bytes;
    switch (kind) {
      case CkptMutation::Truncate:
          return out.substr(0, rng.index(out.size()));
      case CkptMutation::ByteFlip: {
          std::size_t flips = 1 + rng.index(8);
          for (std::size_t i = 0; i < flips; ++i) {
              std::size_t at = rng.index(out.size());
              out[at] = char(out[at] ^ char(1 << rng.index(7)));
          }
          return out;
      }
      case CkptMutation::ChecksumFlip: {
          std::size_t at = out.size() - 1 - rng.index(8);
          out[at] = char(out[at] ^ 0x40);
          return out;
      }
      case CkptMutation::VersionSkew: {
          out[10] = char('2' + rng.index(8));  // "viva-ckpt-N\n"
          return out;
      }
    }
    return out;
}

/** The pristine checkpoint bytes of a non-trivially configured session. */
std::string
pristineCkpt()
{
    vap::Session session(vt::makeFigure1Trace());
    session.setSliceOf(viva::agg::SliceIndex{1}, 3);
    session.forceParams().charge *= 1.25;
    session.stabilizeLayout(30).value();
    session.pinNode("HostA", true);
    return vap::serializeCheckpoint([&] {
        auto dir = corpusDir();
        auto path = (dir / "pristine.ckpt").string();
        EXPECT_TRUE(session.checkpoint(path).ok());
        auto image = vap::readCheckpointFile(path);
        EXPECT_TRUE(image.ok());
        return *image;
    }());
}

} // namespace

/** >= 100 deterministic checkpoint mutants; not one crashes the parser. */
TEST(Corpus, NoCheckpointMutantCrashesTheReader)
{
    const std::string doc = pristineCkpt();
    ASSERT_GT(doc.size(), 64u);
    std::size_t total = 0, rejected = 0;
    for (CkptMutation m : kCkptMutations) {
        for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
            std::string label = std::string("ckpt/") +
                                ckptMutationName(m) + "/seed " +
                                std::to_string(seed);
            std::string mutant = mutateCkpt(doc, m, seed);
            ASSERT_NE(mutant, doc) << label;
            ++total;
            auto parsed = vap::parseCheckpoint(mutant);
            ASSERT_FALSE(parsed.ok())
                << label << ": the checksum/magic/length gauntlet "
                            "accepted a corrupt checkpoint";
            ++rejected;
            EXPECT_FALSE(parsed.error().context().empty()) << label;
            EXPECT_FALSE(parsed.error().toString().empty()) << label;
        }
    }
    EXPECT_GE(total, 100u);
    EXPECT_EQ(rejected, total);
}

/** Failed restores from mutant files leave the session bitwise intact. */
TEST(Corpus, FailedRestoresNeverMutateTheSession)
{
    auto dir = corpusDir();
    const std::string doc = pristineCkpt();
    const std::string goodPath = (dir / "restore_good.ckpt").string();
    {
        std::ofstream out(goodPath, std::ios::binary);
        out.write(doc.data(), std::streamsize(doc.size()));
    }

    vap::Session session(vt::makeFigure1Trace());
    ASSERT_TRUE(session.restore(goodPath).ok());
    const std::uint64_t digest = session.stateDigest();

    std::size_t failed = 0;
    for (CkptMutation m : kCkptMutations) {
        // A slice of the corpus: the parser-level sweep above covers
        // the full seed range.
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            std::string label = std::string("ckpt/") +
                                ckptMutationName(m) + "/seed " +
                                std::to_string(seed);
            auto path = dir / (std::string("ckpt_") +
                               ckptMutationName(m) + "_" +
                               std::to_string(seed) + ".ckpt");
            {
                std::ofstream out(path, std::ios::binary);
                std::string mutant = mutateCkpt(doc, m, seed);
                out.write(mutant.data(),
                          std::streamsize(mutant.size()));
            }
            auto restored = session.restore(path.string());
            ASSERT_FALSE(restored.ok()) << label;
            ++failed;
            EXPECT_FALSE(restored.error().context().empty()) << label;
            EXPECT_EQ(session.stateDigest(), digest)
                << label << ": failed restore mutated the session; "
                << restored.error().toString();
        }
    }
    EXPECT_GE(failed, 32u);

    // After the gauntlet the session still restores and renders.
    ASSERT_TRUE(session.restore(goodPath).ok());
    EXPECT_EQ(session.stateDigest(), digest);
    auto svg =
        session.renderSvg((dir / "after_ckpt_corpus.svg").string());
    EXPECT_TRUE(svg.ok()) << svg.error().toString();
}
