/**
 * @file
 * Tests for the resource governor: per-operation deadlines that
 * cooperatively cancel layout / render / animate work with session
 * state bitwise unchanged, the deterministic working-set model, the
 * memory-budget degradation ladder (Eq. 1 aggregation as load
 * shedding), and the governor's observability counters and commands.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "support/clock.hh"
#include "support/error.hh"
#include "support/governor.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "trace/builder.hh"

namespace vap = viva::app;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

std::string
tempDir()
{
    auto dir =
        std::filesystem::temp_directory_path() / "viva_governor_test";
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** A session over the deeper two-cluster platform hierarchy. */
vap::Session
makePlatformSession()
{
    viva::platform::Platform p =
        viva::platform::makeTwoClusterPlatform();
    vt::Trace t;
    viva::platform::mirrorPlatform(p, t);
    return vap::Session(std::move(t));
}

/**
 * A fake clock whose every read advances far enough that the first
 * deadline poll of a governed operation is already past any small
 * deadline.
 */
struct ExpiredClockFixture
{
    vs::FakeClock fake{0, 1'000'000};  // 1 ms per read
    vs::ClockOverride guard{fake};
};

} // namespace

// --- the deadline channel ------------------------------------------------------

TEST(Governor, DisarmedPollIsFalse)
{
    EXPECT_FALSE(vs::ResourceGovernor::global().deadlineExpired());
}

TEST(Governor, StabilizeAbortLeavesStateBitwiseUnchanged)
{
    ExpiredClockFixture clock;
    vap::Session s(vt::makeFigure1Trace());
    s.setOperationDeadline(1);  // 1 ns: expired at the first poll
    const std::uint64_t digest = s.stateDigest();
    const std::uint64_t aborts = s.deadlineAbortCount();

    auto done = s.stabilizeLayout(100);
    ASSERT_FALSE(done.ok());
    EXPECT_EQ(done.error().code(), vs::Errc::Deadline);
    EXPECT_FALSE(done.error().context().empty());
    EXPECT_EQ(s.stateDigest(), digest);
    EXPECT_EQ(s.deadlineAbortCount(), aborts + 1);
}

TEST(Governor, StepAbortLeavesStateBitwiseUnchanged)
{
    ExpiredClockFixture clock;
    vap::Session s(vt::makeFigure1Trace());
    s.setOperationDeadline(1);
    const std::uint64_t digest = s.stateDigest();

    auto stepped = s.stepLayout(5);
    ASSERT_FALSE(stepped.ok());
    EXPECT_EQ(stepped.error().code(), vs::Errc::Deadline);
    EXPECT_EQ(s.stateDigest(), digest);
}

TEST(Governor, RenderAbortLeavesStateAndDiskUnchanged)
{
    ExpiredClockFixture clock;
    vap::Session s(vt::makeFigure1Trace());
    s.setOperationDeadline(1);
    const std::uint64_t digest = s.stateDigest();
    auto path = tempDir() + "/aborted.svg";
    std::filesystem::remove(path);

    auto rendered = s.renderSvg(path);
    ASSERT_FALSE(rendered.ok());
    EXPECT_EQ(rendered.error().code(), vs::Errc::Deadline);
    EXPECT_EQ(s.stateDigest(), digest);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Governor, AnimateAbortRollsTheWholeOperationBack)
{
    ExpiredClockFixture clock;
    vap::Session s(vt::makeFigure1Trace());
    s.setOperationDeadline(1);
    const std::uint64_t digest = s.stateDigest();

    auto frames = s.animate(3, tempDir(), "gov_frame", 10);
    ASSERT_FALSE(frames.ok());
    EXPECT_EQ(frames.error().code(), vs::Errc::Deadline);
    // The rollback covers the slice and the layout: bitwise identical.
    EXPECT_EQ(s.stateDigest(), digest);
}

TEST(Governor, GenerousDeadlineCommitsTheIdenticalResult)
{
    // A frozen fake clock never expires any deadline, so the governed
    // staged-copy path must commit exactly what the ungoverned path
    // computes.
    vs::FakeClock fake;  // tick 0: time stands still
    vs::ClockOverride guard(fake);

    vap::Session governed(vt::makeFigure1Trace());
    vap::Session plain(vt::makeFigure1Trace());
    governed.setOperationDeadline(3'600'000'000'000ull);

    ASSERT_TRUE(governed.stabilizeLayout(50).ok());
    plain.stabilizeLayout(50).value();
    EXPECT_NE(governed.stateDigest(), plain.stateDigest())
        << "the deadline setting itself is part of the digest";
    governed.setOperationDeadline(0);
    EXPECT_EQ(governed.stateDigest(), plain.stateDigest());

    ASSERT_TRUE(governed.renderSvg(tempDir() + "/gov_ok.svg").ok());
}

// --- the working-set model and the degradation ladder --------------------------

TEST(Governor, WorkingSetModelIsDeterministicAndMonotonic)
{
    vap::Session s = makePlatformSession();
    const std::uint64_t full = s.workingSetBytes();
    EXPECT_GT(full, 0u);
    EXPECT_EQ(s.workingSetBytes(), full);

    // Coarsening the cut sheds visible nodes, never grows the model.
    s.aggregateToDepth(0);
    EXPECT_LT(s.workingSetBytes(), full);
}

TEST(Governor, MemoryBudgetCoarsensTheCutOneLevelAtATime)
{
    vap::Session s = makePlatformSession();
    const std::size_t full_visible = s.cut().visibleCount();
    const std::uint64_t full_bytes = s.workingSetBytes();

    // A budget below the fully-degraded floor: the ladder walks all
    // the way to the root level and stops there (no infinite loop).
    s.setMemoryBudget(1);
    EXPECT_GT(s.degradationCount(), 1u)
        << "the deep hierarchy must take several ladder steps";
    EXPECT_LT(s.cut().visibleCount(), full_visible);
    EXPECT_LT(s.workingSetBytes(), full_bytes);
    EXPECT_TRUE(s.auditInvariants().empty());

    // A generous budget degrades nothing further.
    const std::uint64_t steps = s.degradationCount();
    s.setMemoryBudget(1ull << 40);
    EXPECT_EQ(s.degradationCount(), steps);
}

TEST(Governor, BudgetAppliesToCutMutationsToo)
{
    vap::Session s = makePlatformSession();
    s.setMemoryBudget(1);
    const std::uint64_t steps = s.degradationCount();

    // Disaggregating regrows the working set past the budget; the
    // governor immediately sheds it again.
    s.resetAggregation();
    EXPECT_GT(s.degradationCount(), steps);
    EXPECT_TRUE(s.auditInvariants().empty());
}

TEST(Governor, ZeroBudgetDisablesDegradation)
{
    vap::Session s = makePlatformSession();
    const std::size_t visible = s.cut().visibleCount();
    s.setMemoryBudget(0);
    EXPECT_EQ(s.cut().visibleCount(), visible);
    EXPECT_EQ(s.degradationCount(), 0u);
}

// --- observability -------------------------------------------------------------

TEST(Governor, CountersSurfaceInTheRegistry)
{
    ExpiredClockFixture clock;
    vap::Session s(vt::makeFigure1Trace());
    s.setOperationDeadline(1);
    ASSERT_FALSE(s.stabilizeLayout(10).ok());
    s.setMemoryBudget(1);

    namespace obs = vs::obs;
    obs::StatsSnapshot snap = obs::Registry::global().snapshot();
    std::uint64_t aborts = 0, degradations = 0;
    for (const obs::CounterValue &c : snap.counters) {
        if (c.name == "governor.deadline_aborts")
            aborts = c.value;
        if (c.name == "governor.degradations")
            degradations = c.value;
    }
    EXPECT_GT(aborts, 0u);
    EXPECT_GT(degradations, 0u);
}

// --- commands ------------------------------------------------------------------

TEST(GovernorCommands, SettingsAndStatusRoundTrip)
{
    vap::Session s = makePlatformSession();
    vap::CommandInterpreter cli(s);
    std::ostringstream out;

    ASSERT_TRUE(cli.execute("set deadline-ms 250", out));
    EXPECT_EQ(s.operationDeadline(), 250ull * 1000000ull);
    ASSERT_TRUE(cli.execute("set mem-budget 1", out));
    EXPECT_EQ(s.memoryBudget(), 1u);
    EXPECT_GT(s.degradationCount(), 0u);

    std::ostringstream status;
    ASSERT_TRUE(cli.execute("status", status));
    EXPECT_NE(status.str().find("degradation(s)"), std::string::npos);
    EXPECT_NE(status.str().find("deadline"), std::string::npos);

    std::ostringstream err;
    EXPECT_FALSE(cli.execute("set mem-budget", err));
    EXPECT_FALSE(cli.execute("set deadline-ms nope", err));
}

TEST(GovernorCommands, StabilizeCommandSurfacesTheDeadlineError)
{
    ExpiredClockFixture clock;
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;
    ASSERT_TRUE(cli.execute("set deadline-ms 0", out));
    s.setOperationDeadline(1);
    const std::uint64_t digest = s.stateDigest();

    std::ostringstream err;
    EXPECT_FALSE(cli.execute("stabilize 50", err));
    EXPECT_NE(err.str().find("deadline"), std::string::npos);
    EXPECT_EQ(s.stateDigest(), digest);
}
