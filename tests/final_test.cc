/**
 * @file
 * Last-mile coverage of specific implementation paths: the fair-share
 * solver's buffer reuse across epochs (the stamped dense mapping), the
 * quadtree's depth cap, the pie renderer's full-circle branch, and
 * serialization of awkward variable histories.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "layout/quadtree.hh"
#include "sim/fairshare.hh"
#include "trace/builder.hh"
#include "trace/io.hh"
#include "viz/scene.hh"
#include "viz/svg.hh"

namespace vs = viva::sim;
namespace vt = viva::trace;
namespace vv = viva::viz;

// --- FairShareSolver reuse ---------------------------------------------------

TEST(FairShareSolverReuse, EpochsIsolateConsecutiveSolves)
{
    vs::FairShareSolver solver;
    std::vector<double> rates;

    // First solve uses resources {0, 1}.
    std::vector<std::uint32_t> f0{0};
    std::vector<std::uint32_t> f1{0, 1};
    solver.solve({10.0, 100.0}, {&f0, &f1}, rates);
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
    EXPECT_DOUBLE_EQ(rates[1], 5.0);

    // Second solve uses a disjoint resource {2} -- stale dense-map
    // entries for 0/1 must not leak in.
    std::vector<std::uint32_t> f2{2};
    solver.solve({10.0, 100.0, 42.0}, {&f2}, rates);
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0], 42.0);

    // Third solve reuses resource 0 with a different capacity vector.
    solver.solve({8.0, 100.0, 42.0}, {&f0}, rates);
    EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(FairShareSolverReuse, ManyEpochsStayConsistent)
{
    vs::FairShareSolver solver;
    std::vector<double> rates;
    std::vector<double> capacity{6.0, 12.0, 24.0};
    std::vector<std::uint32_t> flows_a{0, 1};
    std::vector<std::uint32_t> flows_b{1, 2};
    for (int epoch = 0; epoch < 1000; ++epoch) {
        solver.solve(capacity, {&flows_a, &flows_b}, rates);
        EXPECT_DOUBLE_EQ(rates[0], 6.0);
        EXPECT_DOUBLE_EQ(rates[1], 6.0);
    }
}

TEST(FairShareSolverReuse, GrowingResourceSpace)
{
    // The stamped dense map must resize when later solves reference
    // larger resource indices.
    vs::FairShareSolver solver;
    std::vector<double> rates;
    std::vector<std::uint32_t> small{0};
    solver.solve({5.0}, {&small}, rates);
    EXPECT_DOUBLE_EQ(rates[0], 5.0);

    std::vector<double> big_caps(100, 1.0);
    big_caps[99] = 7.0;
    std::vector<std::uint32_t> big{99};
    solver.solve(big_caps, {&big}, rates);
    EXPECT_DOUBLE_EQ(rates[0], 7.0);
}

// --- QuadTree depth cap -------------------------------------------------------

TEST(QuadTreeDepth, NearCoincidentPointsMergeAtCap)
{
    // Points separated by less than the coincidence epsilon would
    // recurse forever without the depth cap / merge logic.
    viva::layout::QuadTree tree({0, 0}, {1, 1});
    for (int i = 0; i < 20; ++i)
        tree.insert({0.5 + i * 1e-13, 0.5}, 1.0);
    EXPECT_EQ(tree.pointCount(), 20u);
    // Field at distance 0.25: all 20 charges act from ~one point.
    viva::layout::Vec2 f = tree.forceAt({0.75, 0.5}, 0.0);
    EXPECT_NEAR(f.x, 20.0 * 0.25 / (0.25 * 0.25 * 0.25), 1e-3);
}

TEST(QuadTreeDepth, CellCountBoundedByMerging)
{
    viva::layout::QuadTree tree({0, 0}, {1, 1});
    for (int i = 0; i < 100; ++i)
        tree.insert({0.123456, 0.654321}, 1.0);
    // Coincident inserts merge into the same leaf: no splitting storm.
    EXPECT_LT(tree.cellCount(), 16u);
}

// --- pie rendering edge ---------------------------------------------------------

TEST(PieRendering, FullCircleSegmentUsesCircleElement)
{
    vv::Scene scene;
    scene.width = scene.height = 100;
    vv::SceneNode node;
    node.x = node.y = 50;
    node.sizePx = 40;
    node.aggregated = true;
    node.segments.push_back({1.0, vv::palette::accent, "all"});
    scene.nodes.push_back(node);

    std::ostringstream out;
    vv::writeSvg(scene, out);
    // A 100% wedge degenerates to a circle, not an arc path.
    EXPECT_EQ(out.str().find("<path d=\"M"), std::string::npos);
    EXPECT_NE(out.str().find(vv::palette::accent.hex()),
              std::string::npos);
}

TEST(PieRendering, TinySegmentsSkipped)
{
    vv::Scene scene;
    scene.width = scene.height = 100;
    vv::SceneNode node;
    node.x = node.y = 50;
    node.sizePx = 40;
    node.segments.push_back({0.0, vv::palette::accent, "zero"});
    node.segments.push_back({-0.5, vv::palette::accent, "negative"});
    scene.nodes.push_back(node);

    std::ostringstream out;
    vv::writeSvg(scene, out);
    EXPECT_EQ(out.str().find("<path d=\"M"), std::string::npos);
}

// --- awkward variable histories through io ---------------------------------------

TEST(IoEdge, NegativeAndTinyValuesRoundTrip)
{
    vt::TraceBuilder b;
    auto gauge = b.trace().addMetric("delta", "",
                                     vt::MetricNature::Gauge);
    auto h = b.host("h");
    vt::Trace &t = b.trace();
    t.variable(h, gauge).set(0.0, -42.5);
    t.variable(h, gauge).set(1e-9, 3.14159265358979312e-20);
    t.variable(h, gauge).set(2.0, 1e300);
    vt::Trace trace = b.take();

    std::ostringstream out;
    vt::writeTrace(trace, out);
    std::istringstream in(out.str());
        auto back = vt::readTrace(in);
    ASSERT_TRUE(back.has_value()) << back.error().toString();
    const vt::Variable *v =
        back->findVariable(back->findByName("h"), gauge);
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->valueAt(0.5e-9), -42.5);
    EXPECT_DOUBLE_EQ(v->valueAt(1.0), 3.14159265358979312e-20);
    EXPECT_DOUBLE_EQ(v->valueAt(3.0), 1e300);
}

TEST(IoEdge, OutOfOrderHistorySerializesSorted)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    auto h = b.host("h");
    vt::Trace &t = b.trace();
    t.variable(h, power).set(5.0, 2.0);
    t.variable(h, power).set(1.0, 1.0);  // out-of-order insert
    vt::Trace trace = b.take();

    std::ostringstream out;
    vt::writeTrace(trace, out);
    std::istringstream in(out.str());
        auto back = vt::readTrace(in);
    ASSERT_TRUE(back.has_value()) << back.error().toString();
    EXPECT_DOUBLE_EQ(
        back->findVariable(back->findByName("h"), power)->valueAt(2.0),
        1.0);
}
