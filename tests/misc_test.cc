/**
 * @file
 * Remaining edge-behavior coverage: engine tag accounting over
 * multi-hop routes, renderer options, scaling configuration, Paje
 * destroy events, and command-interpreter corner cases.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "trace/builder.hh"
#include "trace/paje.hh"
#include "viz/ascii.hh"
#include "viz/scaling.hh"
#include "viz/svg.hh"

namespace vap = viva::app;
namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vt = viva::trace;
namespace vv = viva::viz;

// --- engine edge behavior -------------------------------------------------------

TEST(EngineEdge, TagAccountingSpansEveryRouteLink)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vs::Engine e(p, {"app"});
    auto src = p.findHost("adonis-1");
    auto dst = p.findHost("griffon-1");
    e.startComm(src, dst, 100.0, [] {}, 1);

    const vp::Route &route = p.route(src, dst);
    for (auto l : route.links) {
        EXPECT_GT(e.linkRate(l), 0.0) << "link " << p.link(l).name;
        EXPECT_DOUBLE_EQ(e.linkRate(l), e.linkRate(l, 1));
    }
    // An uninvolved link carries nothing.
    auto other = p.findHost("adonis-2");
    auto other_route = p.route(other, src);
    EXPECT_DOUBLE_EQ(e.linkRate(other_route.links[0]), 0.0);
    e.run();
}

TEST(EngineEdge, ObserverSeesFinalZeroAtRunUntilBoundary)
{
    struct Probe : vs::RateObserver
    {
        double lastTime = -1.0;
        void
        onRates(double time, const vs::RateSnapshot &) override
        {
            lastTime = time;
        }
    };
    vp::Platform p = vp::makeTwoClusterPlatform();
    vs::Engine e(p);
    Probe probe;
    e.setRateObserver(&probe);
    e.startCompute(vp::HostId{0}, 1e6, [] {});  // 100 s of work
    e.run(2.5);
    EXPECT_DOUBLE_EQ(probe.lastTime, 2.5);
    EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(EngineEdge, ManySimultaneousCompletionsAllFire)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vs::Engine e(p);
    int done = 0;
    // Identical work on distinct hosts: all complete at the same time.
    for (vp::HostId h{0}; h.value() < 11; ++h)
        e.startCompute(h, 1000.0, [&] { ++done; });
    e.run();
    EXPECT_EQ(done, 11);
    EXPECT_NEAR(e.now(), 0.1, 1e-9);  // 1000 MFlop at 10000 MFlops
}

// --- renderer options ------------------------------------------------------------

TEST(RendererOptions, SvgWithoutEdgesOrLabels)
{
    vap::Session session(vt::makeFigure1Trace());
    session.stabilizeLayout(100).value();
    vv::Scene scene = session.scene();

    vv::SvgOptions options;
    options.drawEdges = false;
    options.drawLabels = false;
    std::ostringstream out;
    vv::writeSvg(scene, out, options);
    EXPECT_EQ(out.str().find("<line"), std::string::npos);
    EXPECT_EQ(out.str().find("HostA"), std::string::npos);
}

TEST(RendererOptions, AsciiWithoutEdges)
{
    vap::Session session(vt::makeFigure1Trace());
    session.stabilizeLayout(100).value();
    std::string text =
        vv::renderAscii(session.scene(), {60, 20, false});
    EXPECT_EQ(text.find('`'), std::string::npos);
}

TEST(RendererOptions, ScalingMaxPixelConfigurable)
{
    vv::TypeScaling scaling(60.0);
    scaling.setMaxPixelSize(100.0);
    EXPECT_DOUBLE_EQ(scaling.maxPixelSize(), 100.0);
    vt::Trace t = vt::makeFigure1Trace();
    viva::agg::HierarchyCut cut(t);
    auto power = t.findMetric("power");
    viva::agg::View v = viva::agg::buildView(
        t, cut, {0.0, 4.0}, std::vector<vt::MetricId>{power});
    scaling.autoScale(v);
    EXPECT_DOUBLE_EQ(scaling.pixelSize(power, 100.0), 100.0);
}

TEST(RendererOptions, HeterogeneityThresholdSuppressesRing)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("c", vt::ContainerKind::Cluster);
    auto h1 = b.host("h1");
    auto h2 = b.host("h2");
    b.endGroup();
    b.trace().variable(h1, power).set(0.0, 1.0);
    b.trace().variable(h2, power).set(0.0, 99.0);
    vap::Session session(b.take());
    session.aggregateToDepth(1);

    vv::Scene scene = session.scene({}, true);
    std::ostringstream strict, lax;
    vv::SvgOptions options;
    options.heterogeneityThreshold = 100.0;  // nothing qualifies
    vv::writeSvg(scene, strict, options);
    EXPECT_EQ(strict.str().find("stroke-dasharray"), std::string::npos);
    options.heterogeneityThreshold = 0.1;
    vv::writeSvg(scene, lax, options);
    EXPECT_NE(lax.str().find("stroke-dasharray"), std::string::npos);
}

// --- paje destroy + variable on internal container -------------------------------

TEST(PajeEdge, DestroyContainerAccepted)
{
    std::string text = "%EventDef PajeDefineContainerType 0\n"
                       "%  Alias string\n%  Type string\n%  Name string\n"
                       "%EndEventDef\n"
                       "%EventDef PajeCreateContainer 3\n"
                       "%  Time date\n%  Alias string\n%  Type string\n"
                       "%  Container string\n%  Name string\n"
                       "%EndEventDef\n"
                       "%EventDef PajeDestroyContainer 4\n"
                       "%  Time date\n%  Type string\n%  Name string\n"
                       "%EndEventDef\n"
                       "0 H 0 \"Host\"\n"
                       "3 0 h H 0 \"h\"\n"
                       "4 5 H h\n";
    std::istringstream in(text);
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    EXPECT_NE(result->trace.findByName("h"), vt::kNoContainer);
}

TEST(AggregationEdge, VariableOnInternalContainerCounts)
{
    // A cluster-level aggregate metric alongside host-level ones: the
    // subtree aggregation must include both once.
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    b.beginGroup("c", vt::ContainerKind::Cluster);
    auto cluster = b.currentGroup();
    auto h = b.host("h");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.variable(h, power).set(0.0, 10.0);
    t.variable(cluster, power).set(0.0, 5.0);  // cluster-level extra
    vt::Trace trace = b.take();

    viva::agg::Aggregator agg(trace);
    EXPECT_DOUBLE_EQ(agg.value(cluster, power, {0.0, 1.0}), 15.0);
    EXPECT_DOUBLE_EQ(agg.value(trace.root(), power, {0.0, 1.0}), 15.0);
}

// --- command corner cases ----------------------------------------------------------

TEST(CommandCorners, NeedArgumentsMessages)
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    std::ostringstream out;
    EXPECT_FALSE(cli.execute("treemap", out));
    EXPECT_FALSE(cli.execute("gantt", out));
    EXPECT_FALSE(cli.execute("chart power", out));
    EXPECT_FALSE(cli.execute("save", out));
    EXPECT_FALSE(cli.execute("focus", out));
    EXPECT_FALSE(cli.execute("anomalies", out));
    EXPECT_FALSE(cli.execute("export-csv", out));
    EXPECT_NE(out.str().find("needs"), std::string::npos);
}

TEST(CommandCorners, FocusCommandChangesCut)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::mirrorPlatform(p, t);
    vap::Session session(std::move(t));
    vap::CommandInterpreter cli(session);
    std::ostringstream out;
    std::size_t before = session.cut().visibleCount();
    EXPECT_TRUE(cli.execute("focus adonis", out));
    EXPECT_LT(session.cut().visibleCount(), before);
    EXPECT_FALSE(cli.execute("focus nothing-here", out));
}
