/**
 * @file
 * Tests for the layout engine: graph mutations, Barnes-Hut accuracy,
 * force-directed convergence, interactivity and the quality metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "layout/force.hh"
#include "layout/graph.hh"
#include "layout/metrics.hh"
#include "layout/quadtree.hh"
#include "support/random.hh"

namespace vl = viva::layout;

// --- Vec2 -------------------------------------------------------------------

TEST(Vec2, Arithmetic)
{
    vl::Vec2 a{3.0, 4.0};
    EXPECT_DOUBLE_EQ(a.norm(), 5.0);
    EXPECT_DOUBLE_EQ((a * 2.0).x, 6.0);
    EXPECT_DOUBLE_EQ((a - vl::Vec2{3.0, 0.0}).y, 4.0);
    EXPECT_DOUBLE_EQ(vl::distance({0, 0}, {3, 4}), 5.0);
}

// --- LayoutGraph ---------------------------------------------------------------

TEST(LayoutGraph, AddRemoveNodes)
{
    vl::LayoutGraph g;
    auto a = g.addNode(100, {0, 0}, 2.0);
    auto b = g.addNode(200, {1, 0});
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_EQ(g.findKey(100), a);
    EXPECT_DOUBLE_EQ(g.node(a).charge, 2.0);

    g.removeNode(a);
    EXPECT_EQ(g.nodeCount(), 1u);
    EXPECT_FALSE(g.alive(a));
    EXPECT_EQ(g.findKey(100), vl::kNoNode);
    EXPECT_TRUE(g.alive(b));
}

TEST(LayoutGraph, EdgesFollowRemovals)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    auto b = g.addNode(2, {1, 0});
    auto c = g.addNode(3, {2, 0});
    g.addEdge(a, b);
    g.addEdge(b, c);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_EQ(g.neighbors(b).size(), 2u);
    g.removeNode(a);
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_EQ(g.neighbors(b), (std::vector<vl::NodeId>{c}));
}

TEST(LayoutGraph, ClearEdgesKeepsNodes)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    auto b = g.addNode(2, {5, 5});
    g.addEdge(a, b);
    g.clearEdges();
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_DOUBLE_EQ(g.node(b).position.x, 5.0);
}

TEST(LayoutGraph, PinningZeroesVelocity)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    g.mutableNodes()[a.index()].velocity = {3, 3};
    g.setPinned(a, true);
    EXPECT_DOUBLE_EQ(g.node(a).velocity.x, 0.0);
    EXPECT_TRUE(g.node(a).pinned);
}

TEST(LayoutGraph, Centroid)
{
    vl::LayoutGraph g;
    g.addNode(1, {0, 0});
    g.addNode(2, {4, 2});
    EXPECT_DOUBLE_EQ(g.centroid().x, 2.0);
    EXPECT_DOUBLE_EQ(g.centroid().y, 1.0);
}

TEST(LayoutGraphDeath, DuplicateKeyAsserts)
{
    vl::LayoutGraph g;
    g.addNode(7, {0, 0});
    EXPECT_DEATH(g.addNode(7, {1, 1}), "duplicate");
}

// --- QuadTree -------------------------------------------------------------------

TEST(QuadTree, SinglePointField)
{
    vl::QuadTree tree({-10, -10}, {10, 10});
    tree.insert({0, 0}, 2.0);
    vl::Vec2 f = tree.forceAt({3, 0}, 0.5);
    // field = q * d / |d|^3 = 2 * 3 / 27 along +x.
    EXPECT_NEAR(f.x, 2.0 * 3.0 / 27.0, 1e-12);
    EXPECT_NEAR(f.y, 0.0, 1e-12);
}

TEST(QuadTree, SelfQueryIsFinite)
{
    vl::QuadTree tree({-1, -1}, {1, 1});
    tree.insert({0.5, 0.5}, 1.0);
    vl::Vec2 f = tree.forceAt({0.5, 0.5}, 0.5);
    EXPECT_DOUBLE_EQ(f.x, 0.0);
    EXPECT_DOUBLE_EQ(f.y, 0.0);
}

TEST(QuadTree, CoincidentPointsMerge)
{
    vl::QuadTree tree({-1, -1}, {1, 1});
    for (int i = 0; i < 10; ++i)
        tree.insert({0.25, 0.25}, 1.0);
    EXPECT_EQ(tree.pointCount(), 10u);
    vl::Vec2 f = tree.forceAt({0.75, 0.25}, 0.0);
    // Ten unit charges at distance 0.5: 10 * 0.5 / 0.125 = 40.
    EXPECT_NEAR(f.x, 40.0, 1e-9);
}

TEST(QuadTree, ThetaZeroIsExact)
{
    viva::support::Rng rng(11);
    std::vector<std::pair<vl::Vec2, double>> pts;
    vl::QuadTree tree({0, 0}, {100, 100});
    for (int i = 0; i < 60; ++i) {
        vl::Vec2 p{rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)};
        double q = rng.uniform(0.5, 3.0);
        pts.emplace_back(p, q);
        tree.insert(p, q);
    }
    vl::Vec2 query{50.0, 50.0};
    vl::Vec2 exact;
    for (auto &[p, q] : pts) {
        vl::Vec2 d = query - p;
        double dist = d.norm();
        if (dist < 1e-9)
            continue;
        exact += d * (q / (dist * dist * dist));
    }
    vl::Vec2 approx = tree.forceAt(query, 0.0);
    EXPECT_NEAR(approx.x, exact.x, 1e-9);
    EXPECT_NEAR(approx.y, exact.y, 1e-9);
}

/** Barnes-Hut error must shrink with theta (property, parameterized). */
class QuadTreeAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(QuadTreeAccuracy, RelativeErrorBounded)
{
    double theta = GetParam();
    viva::support::Rng rng(23);
    vl::LayoutGraph g;
    for (int i = 0; i < 300; ++i)
        g.addNode(i, {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)},
                  rng.uniform(0.5, 4.0));
    double err = vl::barnesHutError(g, theta);
    // Empirical bound: mean relative error well under theta^2 + 2%.
    EXPECT_LT(err, theta * theta * 0.5 + 0.02) << "theta " << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, QuadTreeAccuracy,
                         ::testing::Values(0.3, 0.5, 0.8, 1.0, 1.2));

namespace
{

/** A randomized charged graph, no edges (only repulsion matters here). */
vl::LayoutGraph
randomChargedGraph(std::uint64_t seed, int n)
{
    viva::support::Rng rng(seed);
    vl::LayoutGraph g;
    for (int i = 0; i < n; ++i)
        g.addNode(std::uint64_t(i),
                  {rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)},
                  rng.uniform(0.5, 4.0));
    return g;
}

} // namespace

/**
 * Property: with theta = 0 no cell is ever opened as an approximation,
 * so the tree walk degenerates to the exact O(n^2) sum -- the mean
 * relative force error must vanish (to rounding) on every randomized
 * graph, not just a hand-picked one.
 */
TEST(QuadTreeProperty, ThetaZeroMatchesExactSumOnRandomGraphs)
{
    for (std::uint64_t seed : {1u, 29u, 404u, 7777u}) {
        vl::LayoutGraph g = randomChargedGraph(seed, 250);
        EXPECT_LT(vl::barnesHutError(g, 0.0), 1e-9) << "seed " << seed;
    }
}

/**
 * Property: opening fewer cells can only lose accuracy, so the mean
 * relative error is non-decreasing in theta. Averaged over seeds with a
 * small slack, since a single graph can show tiny non-monotone wiggles.
 */
TEST(QuadTreeProperty, ErrorIsMonotoneInTheta)
{
    const double thetas[] = {0.0, 0.4, 0.8, 1.2};
    double mean_err[4] = {0, 0, 0, 0};
    const std::uint64_t seeds[] = {3, 31, 314, 3141};
    for (std::uint64_t seed : seeds) {
        vl::LayoutGraph g = randomChargedGraph(seed, 200);
        for (int i = 0; i < 4; ++i)
            mean_err[i] += vl::barnesHutError(g, thetas[i]) / 4.0;
    }
    EXPECT_LT(mean_err[0], 1e-9);
    for (int i = 0; i + 1 < 4; ++i)
        EXPECT_LE(mean_err[i], mean_err[i + 1] + 1e-4)
            << "theta " << thetas[i] << " vs " << thetas[i + 1];
    // And the sweep is not vacuous: coarse theta has real error.
    EXPECT_GT(mean_err[3], 1e-4);
}

// --- the arena batch build --------------------------------------------------

namespace
{

/** A deterministic random body set inside [0, 500)^2. */
std::vector<vl::QuadTree::Body>
randomBodies(std::uint64_t seed, int n)
{
    viva::support::Rng rng(seed);
    std::vector<vl::QuadTree::Body> bodies;
    for (int i = 0; i < n; ++i)
        bodies.push_back({{rng.uniform(0.0, 500.0),
                           rng.uniform(0.0, 500.0)},
                          rng.uniform(0.5, 4.0)});
    return bodies;
}

} // namespace

TEST(QuadTreeArena, BatchBuildAuditsClean)
{
    std::vector<vl::QuadTree::Body> bodies = randomBodies(17, 700);
    vl::QuadTree tree;
    tree.build({-1.0, -1.0}, {501.0, 501.0}, bodies);
    EXPECT_EQ(tree.pointCount(), 700u);
    EXPECT_TRUE(tree.auditInvariants().empty());
}

TEST(QuadTreeArena, BatchMatchesIncrementalAtThetaZero)
{
    // With theta = 0 both trees degenerate to the exact pairwise sum,
    // so the (differently shaped) batch and incremental trees must
    // agree to rounding at every query point.
    std::vector<vl::QuadTree::Body> bodies = randomBodies(19, 300);
    vl::QuadTree incremental({-1.0, -1.0}, {501.0, 501.0});
    for (const auto &b : bodies)
        incremental.insert(b.position, b.charge);
    vl::QuadTree batch;
    batch.build({-1.0, -1.0}, {501.0, 501.0}, bodies);

    viva::support::Rng rng(21);
    for (int i = 0; i < 40; ++i) {
        vl::Vec2 q{rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)};
        vl::Vec2 a = incremental.forceAt(q, 0.0);
        vl::Vec2 b = batch.forceAt(q, 0.0);
        EXPECT_NEAR(a.x, b.x, 1e-9);
        EXPECT_NEAR(a.y, b.y, 1e-9);
    }
}

TEST(QuadTreeArena, ScratchOverloadIsBitwiseIdentical)
{
    // The zero-allocation forceAt must return the exact same bits as
    // the allocating overload: the force layout's determinism contract
    // rides on it.
    std::vector<vl::QuadTree::Body> bodies = randomBodies(23, 500);
    vl::QuadTree tree;
    tree.build({-1.0, -1.0}, {501.0, 501.0}, bodies);

    vl::QuadTree::TraversalStack scratch;
    viva::support::Rng rng(29);
    for (double theta : {0.0, 0.5, 0.8, 1.2}) {
        for (int i = 0; i < 50; ++i) {
            vl::Vec2 q{rng.uniform(-10.0, 510.0),
                       rng.uniform(-10.0, 510.0)};
            vl::Vec2 a = tree.forceAt(q, theta);
            vl::Vec2 b = tree.forceAt(q, theta, scratch);
            EXPECT_EQ(a.x, b.x);
            EXPECT_EQ(a.y, b.y);
        }
    }
}

TEST(QuadTreeArena, RebuildReusesTheArena)
{
    vl::QuadTree tree;
    tree.build({0.0, 0.0}, {500.0, 500.0}, randomBodies(31, 800));
    std::size_t big = tree.cellCount();
    EXPECT_TRUE(tree.auditInvariants().empty());

    // A smaller rebuild shrinks the logical tree (capacity is an
    // implementation detail, but the cell count must track the build).
    tree.build({0.0, 0.0}, {500.0, 500.0}, randomBodies(37, 50));
    EXPECT_LT(tree.cellCount(), big);
    EXPECT_EQ(tree.pointCount(), 50u);
    EXPECT_TRUE(tree.auditInvariants().empty());
}

TEST(QuadTreeArena, CoincidentBodiesMergeIntoOneLeaf)
{
    std::vector<vl::QuadTree::Body> bodies(10,
                                           {{0.25, 0.25}, 1.0});
    vl::QuadTree tree;
    tree.build({-1.0, -1.0}, {1.0, 1.0}, bodies);
    EXPECT_EQ(tree.pointCount(), 10u);
    EXPECT_TRUE(tree.auditInvariants().empty());
    vl::Vec2 f = tree.forceAt({0.75, 0.25}, 0.0);
    // Ten unit charges at distance 0.5: 10 * 0.5 / 0.125 = 40.
    EXPECT_NEAR(f.x, 40.0, 1e-9);
}

TEST(QuadTreeArena, EmptyBuildIsWellFormed)
{
    vl::QuadTree tree;
    tree.build({0.0, 0.0}, {1.0, 1.0}, {});
    EXPECT_EQ(tree.pointCount(), 0u);
    EXPECT_TRUE(tree.auditInvariants().empty());
    vl::Vec2 f = tree.forceAt({0.5, 0.5}, 0.8);
    EXPECT_DOUBLE_EQ(f.x, 0.0);
    EXPECT_DOUBLE_EQ(f.y, 0.0);
}

// --- ForceLayout ------------------------------------------------------------------

TEST(ForceLayout, TwoConnectedNodesApproachRestLength)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    auto b = g.addNode(2, {1, 0});
    g.addEdge(a, b);
    vl::ForceLayout layout(g);
    layout.params().restLength = 40.0;
    layout.stabilize(3000, 1e-10);

    double d = vl::distance(g.node(a).position, g.node(b).position);
    // Equilibrium: spring pull equals charge push, so distance settles
    // somewhat above the rest length; it must be stable and finite.
    EXPECT_GT(d, 30.0);
    EXPECT_LT(d, 400.0);

    // At equilibrium the forces balance: k*q1*q2/d^2 == s*(d - L).
    double push = layout.params().charge / (d * d);
    double pull = layout.params().spring * (d - 40.0);
    EXPECT_NEAR(push, pull, 0.05 * std::max(push, pull) + 1e-6);
}

TEST(ForceLayout, DisconnectedNodesRepel)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    auto b = g.addNode(2, {0.5, 0});
    vl::ForceLayout layout(g);
    double before = vl::distance(g.node(a).position, g.node(b).position);
    for (int i = 0; i < 50; ++i)
        layout.step();
    double after = vl::distance(g.node(a).position, g.node(b).position);
    EXPECT_GT(after, before);
}

TEST(ForceLayout, StabilizeConverges)
{
    viva::support::Rng rng(5);
    vl::LayoutGraph g;
    std::vector<vl::NodeId> ids;
    for (int i = 0; i < 30; ++i)
        ids.push_back(g.addNode(
            i, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}));
    for (int i = 1; i < 30; ++i)
        g.addEdge(ids[i], ids[rng.index(i)]);  // random tree

    vl::ForceLayout layout(g);
    std::size_t iters = layout.stabilize(2000, 1e-4);
    EXPECT_LT(iters, 2000u);
    EXPECT_LT(layout.kineticEnergy() / 30.0, 1e-4);
}

TEST(ForceLayout, PinnedNodeStaysPut)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {5, 5});
    auto b = g.addNode(2, {6, 5});
    g.addEdge(a, b);
    g.setPinned(a, true);
    vl::ForceLayout layout(g);
    layout.stabilize(500);
    EXPECT_DOUBLE_EQ(g.node(a).position.x, 5.0);
    EXPECT_DOUBLE_EQ(g.node(a).position.y, 5.0);
    EXPECT_NE(g.node(b).position.x, 6.0);  // b moved away
}

TEST(ForceLayout, DragPullsNeighborsAlong)
{
    // A 4-node chain; drag one end far away: its neighbour must follow.
    vl::LayoutGraph g;
    std::vector<vl::NodeId> n;
    for (int i = 0; i < 4; ++i)
        n.push_back(g.addNode(i, {double(i) * 40.0, 0}));
    for (int i = 0; i < 3; ++i)
        g.addEdge(n[i], n[i + 1]);

    vl::ForceLayout layout(g);
    layout.stabilize(500);
    double before = g.node(n[1]).position.x;

    layout.dragNode(n[0], {-500.0, 0.0});
    layout.stabilize(800);
    layout.releaseNode(n[0]);
    EXPECT_DOUBLE_EQ(g.node(n[0]).position.x, -500.0);  // held while pinned
    EXPECT_LT(g.node(n[1]).position.x, before - 50.0);  // followed left
}

TEST(ForceLayout, ChargeSliderSpreadsLayout)
{
    auto area_with_charge = [](double charge) {
        viva::support::Rng rng(9);
        vl::LayoutGraph g;
        std::vector<vl::NodeId> ids;
        for (int i = 0; i < 20; ++i)
            ids.push_back(g.addNode(
                i, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}));
        for (int i = 1; i < 20; ++i)
            g.addEdge(ids[i], ids[(i - 1) / 2]);  // binary tree
        vl::ForceLayout layout(g);
        layout.params().charge = charge;
        layout.stabilize(1500, 1e-6);
        return vl::boundingBoxArea(g);
    };
    // Higher charge, more disperse nodes (Section 4.2).
    EXPECT_GT(area_with_charge(8000.0), area_with_charge(500.0) * 1.5);
}

TEST(ForceLayout, SpringSliderTightensEdges)
{
    auto mean_edge = [](double spring) {
        viva::support::Rng rng(9);
        vl::LayoutGraph g;
        std::vector<vl::NodeId> ids;
        for (int i = 0; i < 20; ++i)
            ids.push_back(g.addNode(
                i, {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}));
        for (int i = 1; i < 20; ++i)
            g.addEdge(ids[i], ids[(i - 1) / 2]);
        vl::ForceLayout layout(g);
        layout.params().spring = spring;
        layout.stabilize(1500, 1e-6);
        return vl::edgeLengths(g).mean();
    };
    EXPECT_LT(mean_edge(0.5), mean_edge(0.02));
}

TEST(ForceLayout, BarnesHutMatchesExactStepClosely)
{
    auto run = [](bool use_bh) {
        viva::support::Rng rng(13);
        vl::LayoutGraph g;
        std::vector<vl::NodeId> ids;
        for (int i = 0; i < 40; ++i)
            ids.push_back(g.addNode(
                i, {rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)}));
        for (int i = 1; i < 40; ++i)
            g.addEdge(ids[i], ids[(i - 1) / 3]);
        vl::ForceLayout layout(g);
        layout.params().useBarnesHut = use_bh;
        layout.params().theta = 0.5;
        layout.stabilize(400, 1e-8);
        return vl::snapshotPositions(g);
    };
    auto exact = run(false);
    auto approx = run(true);
    // The two layouts need not be identical, but their shape statistics
    // must agree: compare bounding metrics via displacement spread.
    viva::support::RunningStats d = vl::displacement(exact, approx);
    EXPECT_EQ(d.count(), 40u);
    // Converged equilibria are close relative to the layout extent.
    EXPECT_LT(d.mean(), 60.0);
}

TEST(ForceLayout, DynamicInsertKeepsOthersNear)
{
    viva::support::Rng rng(17);
    vl::LayoutGraph g;
    std::vector<vl::NodeId> ids;
    for (int i = 0; i < 25; ++i)
        ids.push_back(g.addNode(
            i, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)}));
    for (int i = 1; i < 25; ++i)
        g.addEdge(ids[i], ids[(i - 1) / 2]);
    vl::ForceLayout layout(g);
    layout.stabilize(2000, 1e-6);
    auto before = vl::snapshotPositions(g);
    double extent = std::sqrt(vl::boundingBoxArea(g));

    // Insert a node connected to node 0, near it.
    auto fresh = g.addNode(1000, g.node(ids[0]).position + vl::Vec2{5, 5});
    g.addEdge(fresh, ids[0]);
    layout.stabilize(2000, 1e-6);

    auto after = vl::snapshotPositions(g);
    viva::support::RunningStats d = vl::displacement(before, after);
    // The smooth-evolution property: mean displacement is a small
    // fraction of the layout extent.
    EXPECT_LT(d.mean(), extent * 0.35);
}

// --- metrics ----------------------------------------------------------------------

TEST(LayoutMetrics, SnapshotAndDisplacement)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    g.addNode(2, {3, 4});
    auto before = vl::snapshotPositions(g);
    g.setPosition(a, {1, 0});
    auto after = vl::snapshotPositions(g);
    auto d = vl::displacement(before, after);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.5);
}

TEST(LayoutMetrics, DisplacementIgnoresUnsharedKeys)
{
    vl::Snapshot a{{1, {0, 0}}, {2, {1, 1}}};
    vl::Snapshot b{{2, {1, 1}}, {3, {9, 9}}};
    auto d = vl::displacement(a, b);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(LayoutMetrics, EdgeCrossingsKnownConfigurations)
{
    vl::LayoutGraph g;
    auto a = g.addNode(1, {0, 0});
    auto b = g.addNode(2, {10, 10});
    auto c = g.addNode(3, {0, 10});
    auto d = g.addNode(4, {10, 0});
    g.addEdge(a, b);  // diagonal
    g.addEdge(c, d);  // crossing diagonal
    EXPECT_EQ(vl::edgeCrossings(g), 1u);

    vl::LayoutGraph g2;
    auto a2 = g2.addNode(1, {0, 0});
    auto b2 = g2.addNode(2, {10, 0});
    auto c2 = g2.addNode(3, {5, 10});
    g2.addEdge(a2, b2);
    g2.addEdge(b2, c2);
    g2.addEdge(c2, a2);  // triangle: shared endpoints never cross
    EXPECT_EQ(vl::edgeCrossings(g2), 0u);
}

TEST(LayoutMetrics, BoundingBoxArea)
{
    vl::LayoutGraph g;
    g.addNode(1, {0, 0});
    g.addNode(2, {4, 5});
    EXPECT_DOUBLE_EQ(vl::boundingBoxArea(g), 20.0);
}
