/**
 * @file
 * Tests for the visualization pipeline: mapping rules, the Fig. 4
 * scaling semantics, scene composition, and the SVG/ASCII renderers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "agg/aggregate.hh"
#include "trace/builder.hh"
#include "viz/ascii.hh"
#include "viz/mapping.hh"
#include "viz/scaling.hh"
#include "viz/scene.hh"
#include "viz/svg.hh"

namespace va = viva::agg;
namespace vt = viva::trace;
namespace vv = viva::viz;

namespace
{

struct Fig4Fixture
{
    vt::Trace trace;
    vt::ContainerId host_a, host_b, link_a;
    vt::MetricId power, power_used, bw, bw_used;

    Fig4Fixture()
    {
        trace = vt::makeFigure1Trace();
        host_a = trace.findByPath("HostA");
        host_b = trace.findByPath("HostB");
        link_a = trace.findByPath("LinkA");
        power = trace.findMetric("power");
        power_used = trace.findMetric("power_used");
        bw = trace.findMetric("bandwidth");
        bw_used = trace.findMetric("bandwidth_used");
    }

    va::View
    view(const va::TimeSlice &slice) const
    {
        va::HierarchyCut cut(trace);
        return va::buildView(trace, cut, slice,
                             {power, power_used, bw, bw_used});
    }

    viva::layout::Snapshot
    positions() const
    {
        return {{host_a.value(), {0.0, 0.0}},
                {host_b.value(), {100.0, 0.0}},
                {link_a.value(), {50.0, 30.0}}};
    }
};

} // namespace

// --- mapping ----------------------------------------------------------------

TEST(Mapping, DefaultsFollowThePaper)
{
    Fig4Fixture f;
    vv::VisualMapping m = vv::VisualMapping::defaults(f.trace);

    auto host = m.rule(vt::ContainerKind::Host);
    ASSERT_TRUE(host.has_value());
    EXPECT_EQ(host->shape, vv::ShapeKind::Square);
    EXPECT_EQ(host->sizeMetric, f.power);
    EXPECT_EQ(host->fillMetric, f.power_used);

    auto link = m.rule(vt::ContainerKind::Link);
    ASSERT_TRUE(link.has_value());
    EXPECT_EQ(link->shape, vv::ShapeKind::Diamond);
    EXPECT_EQ(link->sizeMetric, f.bw);

    EXPECT_FALSE(m.rule(vt::ContainerKind::Process).has_value());
}

TEST(Mapping, RulesCanBeChangedDynamically)
{
    Fig4Fixture f;
    vv::VisualMapping m = vv::VisualMapping::defaults(f.trace);
    vv::MappingRule r;
    r.shape = vv::ShapeKind::Circle;
    r.sizeMetric = f.bw_used;
    m.setRule(vt::ContainerKind::Host, r);
    EXPECT_EQ(m.rule(vt::ContainerKind::Host)->shape,
              vv::ShapeKind::Circle);
}

TEST(Mapping, ReferencedMetricsDeduplicated)
{
    Fig4Fixture f;
    vv::VisualMapping m = vv::VisualMapping::defaults(f.trace);
    auto metrics = m.referencedMetrics();
    EXPECT_EQ(metrics.size(), 4u);  // power, power_used, bw, bw_used
}

TEST(Mapping, ColorHex)
{
    vv::Color c{70, 130, 180};
    EXPECT_EQ(c.hex(), "#4682b4");
}

// --- scaling (Fig. 4 semantics) --------------------------------------------------

TEST(Scaling, LargestObjectOfEachTypeGetsMaxPixel)
{
    Fig4Fixture f;
    // Scheme A: t in [0, 4): HostA 100, HostB 25, LinkA 10000.
    va::View view = f.view({0.0, 4.0});
    vv::TypeScaling scaling(60.0);
    scaling.autoScale(view);

    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.power, 100.0), 60.0);
    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.power, 25.0), 15.0);
    // The link's own scale: 10000 also maps to 60 px.
    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.bw, 10000.0), 60.0);
}

TEST(Scaling, SchemeBRescalesAfterSliceChange)
{
    Fig4Fixture f;
    // Scheme B: t in [4, 8): HostA 10, HostB 40 -- the max moved.
    va::View view = f.view({4.0, 8.0});
    vv::TypeScaling scaling(60.0);
    scaling.autoScale(view);
    // HostB's 40 MFlops now maps to the maximum size (the paper's
    // "bigger size of a type of object within a time-slice").
    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.power, 40.0), 60.0);
    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.power, 10.0), 15.0);
}

TEST(Scaling, SlidersScaleIndependently)
{
    Fig4Fixture f;
    va::View view = f.view({4.0, 8.0});
    vv::TypeScaling scaling(60.0);
    scaling.autoScale(view);
    // Scheme C: hosts bigger, links smaller.
    scaling.setSlider(f.power, 2.0);
    scaling.setSlider(f.bw, 0.5);
    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.power, 40.0), 120.0);
    EXPECT_DOUBLE_EQ(scaling.pixelSize(f.bw, 10000.0), 30.0);
    EXPECT_DOUBLE_EQ(scaling.slider(f.power_used), 1.0);  // untouched
}

TEST(Scaling, SliderClamped)
{
    vv::TypeScaling scaling;
    scaling.setSlider(vt::MetricId{0}, 100.0);
    EXPECT_DOUBLE_EQ(scaling.slider(vt::MetricId{0}), 20.0);
    scaling.setSlider(vt::MetricId{0}, 0.0);
    EXPECT_DOUBLE_EQ(scaling.slider(vt::MetricId{0}), 0.05);
}

TEST(Scaling, UnknownMetricGivesZero)
{
    vv::TypeScaling scaling;
    EXPECT_DOUBLE_EQ(scaling.pixelSize(vt::MetricId{3}, 10.0), 0.0);
}

// --- scene ------------------------------------------------------------------------

TEST(Scene, ComposesNodesWithMappedGlyphs)
{
    Fig4Fixture f;
    va::View view = f.view({0.0, 4.0});
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::TypeScaling scaling(60.0);

    vv::Scene scene = vv::composeScene(view, f.trace, f.positions(),
                                       mapping, scaling);
    ASSERT_EQ(scene.nodes.size(), 3u);
    ASSERT_EQ(scene.edges.size(), 2u);

    const vv::SceneNode *ha = nullptr, *la = nullptr;
    for (const auto &n : scene.nodes) {
        if (n.id == f.host_a)
            ha = &n;
        if (n.id == f.link_a)
            la = &n;
    }
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(la, nullptr);
    EXPECT_EQ(ha->shape, vv::ShapeKind::Square);
    EXPECT_DOUBLE_EQ(ha->sizePx, 60.0);
    // Fill = power_used / power = 50 / 100 over [0, 4).
    EXPECT_DOUBLE_EQ(ha->fill, 0.5);
    EXPECT_EQ(la->shape, vv::ShapeKind::Diamond);
    EXPECT_DOUBLE_EQ(la->fill, 0.2);  // 2000 / 10000
}

TEST(Scene, CanvasTransformKeepsNodesInside)
{
    Fig4Fixture f;
    va::View view = f.view({0.0, 4.0});
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::TypeScaling scaling;
    vv::SceneOptions options;
    options.width = 400;
    options.height = 300;
    options.margin = 40;

    vv::Scene scene = vv::composeScene(view, f.trace, f.positions(),
                                       mapping, scaling, options);
    for (const auto &n : scene.nodes) {
        EXPECT_GE(n.x, 40.0);
        EXPECT_LE(n.x, 360.0);
        EXPECT_GE(n.y, 40.0);
        EXPECT_LE(n.y, 260.0);
    }
}

TEST(Scene, AggregatedNodeGetsCompositeGlyph)
{
    Fig4Fixture f;
    va::HierarchyCut cut(f.trace);
    // Group everything under the root... the root has only leaves, so
    // build a grouped fixture instead.
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    auto bw = b.bandwidthMetric();
    b.beginGroup("g", vt::ContainerKind::Cluster);
    auto h = b.host("h");
    auto l = b.link("l");
    b.endGroup();
    vt::Trace &t = b.trace();
    t.variable(h, power).set(0.0, 10.0);
    t.variable(l, bw).set(0.0, 100.0);
    vt::Trace trace = b.take();
    auto g = trace.findByPath("g");

    va::HierarchyCut cut2(trace);
    cut2.aggregate(g);
    va::View view = va::buildView(trace, cut2, {0.0, 1.0}, {power, bw});
    vv::VisualMapping mapping = vv::VisualMapping::defaults(trace);
    vv::TypeScaling scaling;
    viva::layout::Snapshot pos{{g.value(), {0.0, 0.0}}};

    vv::Scene scene =
        vv::composeScene(view, trace, pos, mapping, scaling);
    ASSERT_EQ(scene.nodes.size(), 1u);
    EXPECT_TRUE(scene.nodes[0].aggregated);
    EXPECT_EQ(scene.nodes[0].shape, vv::ShapeKind::Square);
    EXPECT_TRUE(scene.nodes[0].hasSecondary);  // the Fig. 3 diamond
    EXPECT_EQ(scene.nodes[0].secondaryShape, vv::ShapeKind::Diamond);
    EXPECT_GT(scene.nodes[0].secondarySizePx, 0.0);
}

TEST(Scene, MissingPositionSkipsNodeWithWarning)
{
    Fig4Fixture f;
    va::View view = f.view({0.0, 4.0});
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::TypeScaling scaling;
    viva::layout::Snapshot partial{{f.host_a.value(), {0.0, 0.0}}};

    viva::support::setQuiet(true);
    std::size_t warns = viva::support::warnCount();
    vv::Scene scene = vv::composeScene(view, f.trace, partial, mapping,
                                       scaling);
    viva::support::setQuiet(false);
    EXPECT_EQ(scene.nodes.size(), 1u);
    EXPECT_GT(viva::support::warnCount(), warns);
    EXPECT_TRUE(scene.edges.empty());  // both edges touched missing nodes
}

// --- svg --------------------------------------------------------------------------

TEST(Svg, ContainsExpectedElements)
{
    Fig4Fixture f;
    va::View view = f.view({0.0, 4.0});
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::TypeScaling scaling;
    vv::Scene scene = vv::composeScene(view, f.trace, f.positions(),
                                       mapping, scaling);

    std::ostringstream out;
    vv::SvgOptions options;
    options.title = "figure one";
    options.labelsAggregatedOnly = false;
    vv::writeSvg(scene, out, options);
    std::string svg = out.str();

    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("<rect"), std::string::npos);      // squares
    EXPECT_NE(svg.find("<polygon"), std::string::npos);   // diamond
    EXPECT_NE(svg.find("<line"), std::string::npos);      // edges
    EXPECT_NE(svg.find("figure one"), std::string::npos); // title
    EXPECT_NE(svg.find("HostA"), std::string::npos);      // label
    EXPECT_NE(svg.find("time slice [0, 4)"), std::string::npos);
}

TEST(Svg, EscapesXmlSpecials)
{
    vv::Scene scene;
    scene.width = 100;
    scene.height = 100;
    vv::SceneNode n;
    n.label = "a<b&c>";
    n.aggregated = true;
    n.x = n.y = 50;
    n.sizePx = 10;
    scene.nodes.push_back(n);

    std::ostringstream out;
    vv::writeSvg(scene, out);
    std::string svg = out.str();
    EXPECT_NE(svg.find("a&lt;b&amp;c&gt;"), std::string::npos);
    EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

// --- ascii -------------------------------------------------------------------------

TEST(Ascii, RendersGlyphsAndFrame)
{
    Fig4Fixture f;
    va::View view = f.view({0.0, 4.0});
    vv::VisualMapping mapping = vv::VisualMapping::defaults(f.trace);
    vv::TypeScaling scaling;
    vv::Scene scene = vv::composeScene(view, f.trace, f.positions(),
                                       mapping, scaling);

    std::string text = vv::renderAscii(scene, {40, 12, true});
    // Frame lines.
    EXPECT_NE(text.find("+----"), std::string::npos);
    // Hosts at 50% fill draw as '#'; the 20%-filled diamond as 'x'.
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_NE(text.find('x'), std::string::npos);
    // Edge sampling dots appear.
    EXPECT_NE(text.find('`'), std::string::npos);
}

TEST(Ascii, EmptySceneStillFramed)
{
    vv::Scene scene;
    scene.width = 10;
    scene.height = 10;
    std::string text = vv::renderAscii(scene, {20, 6, true});
    EXPECT_NE(text.find('+'), std::string::npos);
}
