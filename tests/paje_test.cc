/**
 * @file
 * Tests for the Paje format subset: hand-written traces in the classic
 * format, error handling, and the writer round trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "trace/builder.hh"
#include "trace/paje.hh"

namespace vt = viva::trace;

namespace
{

/** A minimal, classic hand-written Paje trace. */
const char *kClassicTrace = R"(
%EventDef PajeDefineContainerType 0
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeDefineVariableType 1
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeDefineStateType 2
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeCreateContainer 3
%  Time date
%  Alias string
%  Type string
%  Container string
%  Name string
%EndEventDef
%EventDef PajeSetVariable 4
%  Time date
%  Type string
%  Container string
%  Value double
%EndEventDef
%EventDef PajeAddVariable 5
%  Time date
%  Type string
%  Container string
%  Value double
%EndEventDef
%EventDef PajeSetState 6
%  Time date
%  Type string
%  Container string
%  Value string
%EndEventDef
%EventDef PajeStartLink 7
%  Time date
%  Type string
%  Container string
%  Value string
%  StartContainer string
%  Key string
%EndEventDef
%EventDef PajeEndLink 8
%  Time date
%  Type string
%  Container string
%  Value string
%  EndContainer string
%  Key string
%EndEventDef
0 CL 0 "Cluster"
0 H CL "Host"
1 P H "power"
1 U H "power_used"
2 ST H "State"
3 0 c1 CL 0 "cluster0"
3 0 h1 H c1 "host one"
3 0 h2 H c1 "host-2"
4 0 P h1 100.5
4 0 P h2 50
5 2 P h1 10
6 0 ST h1 "compute"
6 3 ST h1 "wait"
6 5 ST h1 "compute"
7 0 L 0 "comm" h1 k0
8 1 L 0 "comm" h2 k0
)";

} // namespace

TEST(Paje, ClassicTraceParses)
{
    std::istringstream in(kClassicTrace);
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    const vt::Trace &t = result->trace;

    // Hierarchy and kinds.
    auto cluster = t.findByName("cluster0");
    auto h1 = t.findByName("host one");
    auto h2 = t.findByName("host-2");
    ASSERT_NE(cluster, vt::kNoContainer);
    ASSERT_NE(h1, vt::kNoContainer);
    EXPECT_EQ(t.container(cluster).kind, vt::ContainerKind::Cluster);
    EXPECT_EQ(t.container(h1).kind, vt::ContainerKind::Host);
    EXPECT_EQ(t.container(h1).parent, cluster);

    // Metrics inferred with natures.
    auto power = t.findMetric("power");
    auto used = t.findMetric("power_used");
    ASSERT_NE(power, vt::kNoMetric);
    EXPECT_EQ(t.metric(power).nature, vt::MetricNature::Capacity);
    EXPECT_EQ(t.metric(used).nature, vt::MetricNature::Utilization);

    // Variables: Set then Add.
    EXPECT_DOUBLE_EQ(t.findVariable(h1, power)->valueAt(1.0), 100.5);
    EXPECT_DOUBLE_EQ(t.findVariable(h1, power)->valueAt(3.0), 110.5);
    EXPECT_DOUBLE_EQ(t.findVariable(h2, power)->valueAt(1.0), 50.0);

    // States: SetState closes the previous one; the last closes at the
    // final observed time (5).
    ASSERT_EQ(t.states().size(), 2u);
    EXPECT_EQ(t.states()[0].state, "compute");
    EXPECT_DOUBLE_EQ(t.states()[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(t.states()[0].end, 3.0);
    EXPECT_EQ(t.states()[1].state, "wait");
    EXPECT_DOUBLE_EQ(t.states()[1].end, 5.0);

    // The link became a relation.
    ASSERT_EQ(t.relations().size(), 1u);
    EXPECT_EQ(t.neighbors(h1), (std::vector<vt::ContainerId>{h2}));

    EXPECT_GT(result->eventCount, 10u);
    EXPECT_TRUE(result->warnings.empty());
}

TEST(Paje, PushPopNesting)
{
    std::string header = R"(
%EventDef PajeDefineContainerType 0
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeCreateContainer 3
%  Time date
%  Alias string
%  Type string
%  Container string
%  Name string
%EndEventDef
%EventDef PajePushState 5
%  Time date
%  Type string
%  Container string
%  Value string
%EndEventDef
%EventDef PajePopState 6
%  Time date
%  Type string
%  Container string
%EndEventDef
0 H 0 "Host"
3 0 h H 0 "h"
5 0 S h "run"
5 2 S h "io"
6 3 S h
6 8 S h
)";
    std::istringstream in(header);
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    const vt::Trace &t = result->trace;

    // run [0,2), io [2,3), run resumes [3,8).
    ASSERT_EQ(t.states().size(), 3u);
    EXPECT_EQ(t.states()[0].state, "run");
    EXPECT_DOUBLE_EQ(t.states()[0].end, 2.0);
    EXPECT_EQ(t.states()[1].state, "io");
    EXPECT_DOUBLE_EQ(t.states()[1].begin, 2.0);
    EXPECT_DOUBLE_EQ(t.states()[1].end, 3.0);
    EXPECT_EQ(t.states()[2].state, "run");
    EXPECT_DOUBLE_EQ(t.states()[2].begin, 3.0);
    EXPECT_DOUBLE_EQ(t.states()[2].end, 8.0);
}

TEST(Paje, UnknownEventIdFails)
{
    std::istringstream in("42 foo bar\n");
    auto result = vt::readPajeTrace(in);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().toString().find("unknown event id"),
              std::string::npos);
}

TEST(Paje, UnterminatedQuoteFails)
{
    std::string text = "%EventDef PajeCreateContainer 3\n"
                       "%  Time date\n%  Alias string\n%  Type string\n"
                       "%  Container string\n%  Name string\n"
                       "%EndEventDef\n"
                       "3 0 a T 0 \"oops\n";
    std::istringstream in(text);
    auto result = vt::readPajeTrace(in);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().toString().find("quote"),
              std::string::npos);
}

TEST(Paje, UnterminatedEventDefFails)
{
    std::istringstream in("%EventDef PajeSetVariable 4\n%  Time date\n");
    EXPECT_FALSE(vt::readPajeTrace(in).has_value());
}

TEST(Paje, UnknownEventKindSkippedWithWarning)
{
    std::string text = "%EventDef PajeExoticEvent 9\n"
                       "%  Time date\n"
                       "%EndEventDef\n"
                       "9 1.5\n";
    std::istringstream in(text);
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    EXPECT_EQ(result->eventCount, 0u);
    ASSERT_EQ(result->warnings.size(), 1u);
    EXPECT_NE(result->warnings[0].find("PajeExoticEvent"),
              std::string::npos);
}

TEST(Paje, VariableOnUnknownContainerWarns)
{
    std::string text = "%EventDef PajeDefineVariableType 1\n"
                       "%  Alias string\n%  Type string\n%  Name string\n"
                       "%EndEventDef\n"
                       "%EventDef PajeSetVariable 4\n"
                       "%  Time date\n%  Type string\n"
                       "%  Container string\n%  Value double\n"
                       "%EndEventDef\n"
                       "1 P 0 \"power\"\n"
                       "4 0 P nosuch 1\n";
    std::istringstream in(text);
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    EXPECT_FALSE(result->warnings.empty());
}

TEST(Paje, WriterRoundTripsFigure1)
{
    vt::Trace original = vt::makeFigure1Trace();
    original.addState(original.findByName("HostA"), 0.0, 4.0, "busy");
    original.addState(original.findByName("HostA"), 4.0, 8.0, "idle");

    std::ostringstream out;
    vt::writePajeTrace(original, out);

    std::istringstream in(out.str());
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    const vt::Trace &back = result->trace;

    EXPECT_EQ(back.containerCount(), original.containerCount());
    EXPECT_EQ(back.metricCount(), original.metricCount());
    EXPECT_EQ(back.relations().size(), original.relations().size());
    EXPECT_EQ(back.pointCount(), original.pointCount());
    EXPECT_EQ(back.states().size(), original.states().size());

    auto host_a = back.findByName("HostA");
    ASSERT_NE(host_a, vt::kNoContainer);
    EXPECT_EQ(back.container(host_a).kind, vt::ContainerKind::Host);
    auto power = back.findMetric("power");
    EXPECT_DOUBLE_EQ(back.findVariable(host_a, power)->valueAt(5.0),
                     10.0);
    EXPECT_DOUBLE_EQ(back.states()[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(back.states()[0].end, 4.0);
}

TEST(Paje, WriterRoundTripsPlatformMirror)
{
    viva::platform::Platform p =
        viva::platform::makeTwoClusterPlatform();
    vt::Trace original;
    viva::platform::mirrorPlatform(p, original);

    std::ostringstream out;
    vt::writePajeTrace(original, out);
    std::istringstream in(out.str());
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    const vt::Trace &back = result->trace;

    EXPECT_EQ(back.containerCount(), original.containerCount());
    EXPECT_EQ(back.relations().size(), original.relations().size());
    // Hierarchy paths survive.
    EXPECT_NE(back.findByPath("hpc/testbed/adonis/adonis-3"),
              vt::kNoContainer);
    // Kinds survive through the container-type names.
    EXPECT_EQ(back.container(back.findByName("backbone")).kind,
              vt::ContainerKind::Link);
}

TEST(Paje, NamesWithSpacesSurviveRoundTrip)
{
    vt::TraceBuilder b;
    auto power = b.powerMetric();
    auto h = b.trace().addContainer("my weird host",
                                    vt::ContainerKind::Host,
                                    b.trace().root());
    b.trace().variable(h, power).set(0.0, 5.0);
    vt::Trace original = b.take();

    std::ostringstream out;
    vt::writePajeTrace(original, out);
    std::istringstream in(out.str());
        auto result = vt::readPajeTrace(in);
    ASSERT_TRUE(result.has_value()) << result.error().toString();
    EXPECT_NE(result->trace.findByName("my weird host"),
              vt::kNoContainer);
}
