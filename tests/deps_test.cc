/**
 * @file
 * Tests for the viva-deps engine: fixture include trees under
 * tests/deps_fixtures/ cover the clean case, an include cycle and an
 * illegal cross-layer edge; in-memory inputs cover waivers, rules
 * parsing and the allow-graph DAG check. The trees are loaded with
 * paths relative to the tree root, so layer scoping behaves exactly as
 * it does on the real repository.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/deps.hh"

namespace vd = viva::deps;
namespace fs = std::filesystem;

namespace
{

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture " << p.string();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Load one fixture tree: every .hh/.cc under it, tree-relative paths. */
std::vector<vd::FileInput>
loadTree(const std::string &tree)
{
    const fs::path root = fs::path(VIVA_DEPS_FIXTURES) / tree;
    std::vector<vd::FileInput> files;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".hh" && ext != ".cc")
            continue;
        files.push_back(
            {fs::relative(entry.path(), root).generic_string(),
             readFile(entry.path())});
    }
    std::sort(files.begin(), files.end(),
              [](const vd::FileInput &a, const vd::FileInput &b) {
                  return a.path < b.path;
              });
    return files;
}

/** Parse the tree's rules.txt, failing the test on a parse error. */
vd::Ruleset
loadRules(const std::string &tree)
{
    const fs::path path =
        fs::path(VIVA_DEPS_FIXTURES) / tree / "rules.txt";
    vd::Ruleset rules;
    std::string error;
    EXPECT_TRUE(vd::parseRules(readFile(path), rules, error)) << error;
    return rules;
}

std::size_t
countKind(const std::vector<vd::Violation> &violations,
          const std::string &kind)
{
    std::size_t n = 0;
    for (const vd::Violation &v : violations)
        if (v.kind == kind)
            ++n;
    return n;
}

} // namespace

// --- fixture trees --------------------------------------------------------------

TEST(DepsTrees, CleanDagPasses)
{
    auto violations = vd::checkDeps(loadTree("clean"), loadRules("clean"));
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? ""
                               : vd::formatViolation(violations[0]));
}

TEST(DepsTrees, IllegalEdgeCaught)
{
    auto violations =
        vd::checkDeps(loadTree("illegal"), loadRules("illegal"));
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].kind, "illegal-edge");
    EXPECT_EQ(violations[0].file, "src/support/helper.hh");
    EXPECT_EQ(violations[0].line, 2u);
    EXPECT_NE(violations[0].message.find("'support'"),
              std::string::npos);
    EXPECT_NE(violations[0].message.find("'app'"), std::string::npos);
}

TEST(DepsTrees, IncludeCycleCaught)
{
    auto violations =
        vd::checkDeps(loadTree("cycle"), loadRules("cycle"));
    ASSERT_EQ(countKind(violations, "cycle"), 1u);
    const vd::Violation &v = violations[0];
    // The three-header knot is reported once, naming every member.
    EXPECT_NE(v.message.find("src/support/a.hh"), std::string::npos);
    EXPECT_NE(v.message.find("src/support/b.hh"), std::string::npos);
    EXPECT_NE(v.message.find("src/support/c.hh"), std::string::npos);
    EXPECT_GT(v.line, 0u);
}

// --- waivers --------------------------------------------------------------------

namespace
{

/** The illegal tree's rules, shared by the waiver tests. */
vd::Ruleset
twoLayerRules()
{
    vd::Ruleset rules;
    std::string error;
    EXPECT_TRUE(vd::parseRules("layer support src/support/\n"
                               "layer app     src/app/\n"
                               "allow app -> support\n",
                               rules, error))
        << error;
    return rules;
}

const char *kAppHeader = "#pragma once\nint session();\n";

} // namespace

TEST(DepsWaivers, TrailingWaiverSuppressesEdge)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"src/support/helper.hh",
         "#pragma once\n"
         "#include \"app/session.hh\" // viva-deps: "
         "allow(support->app): legacy shim, tracked in DESIGN.md\n"},
    };
    EXPECT_TRUE(vd::checkDeps(files, twoLayerRules()).empty());
}

TEST(DepsWaivers, LineAboveWaiverSuppressesEdge)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"src/support/helper.hh",
         "#pragma once\n"
         "// viva-deps: allow(support->app): legacy shim\n"
         "#include \"app/session.hh\"\n"},
    };
    EXPECT_TRUE(vd::checkDeps(files, twoLayerRules()).empty());
}

TEST(DepsWaivers, WrongEdgeWaiverDoesNotSuppress)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"src/support/helper.hh",
         "#pragma once\n"
         "#include \"app/session.hh\" // viva-deps: "
         "allow(support->viz): aimed at the wrong edge\n"},
    };
    auto violations = vd::checkDeps(files, twoLayerRules());
    EXPECT_EQ(countKind(violations, "illegal-edge"), 1u);
}

TEST(DepsWaivers, MissingRationaleIsItselfAViolation)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        // The marker is split across two literals so the repository's
        // own viva-deps scan does not read this test as a waiver.
        {"src/support/helper.hh",
         "#pragma once\n"
         "#include \"app/session.hh\" "
         "// viva-deps: " "allow(support->app)\n"},
    };
    auto violations = vd::checkDeps(files, twoLayerRules());
    ASSERT_EQ(countKind(violations, "waiver"), 1u);
    EXPECT_EQ(violations[0].file, "src/support/helper.hh");
    EXPECT_EQ(violations[0].line, 2u);
    EXPECT_NE(violations[0].message.find("rationale"),
              std::string::npos);
}

// --- rules parsing --------------------------------------------------------------

TEST(DepsRules, MalformedDirectiveRejected)
{
    vd::Ruleset rules;
    std::string error;
    EXPECT_FALSE(vd::parseRules("layre support src/support/\n", rules,
                                error));
    EXPECT_NE(error.find("unknown directive"), std::string::npos);
    EXPECT_FALSE(vd::parseRules("allow app support\n", rules, error));
    EXPECT_FALSE(vd::parseRules("layer lonely\n", rules, error));
}

TEST(DepsRules, UnknownAndDuplicateLayersRejected)
{
    vd::Ruleset rules;
    std::string error;
    EXPECT_FALSE(vd::parseRules("layer app src/app/\n"
                                "allow app -> ghost\n",
                                rules, error));
    EXPECT_NE(error.find("ghost"), std::string::npos);
    EXPECT_FALSE(vd::parseRules("layer app src/app/\n"
                                "layer app src/app2/\n",
                                rules, error));
    EXPECT_NE(error.find("twice"), std::string::npos);
}

TEST(DepsRules, CommentsAndStarEdges)
{
    vd::Ruleset rules;
    std::string error;
    ASSERT_TRUE(vd::parseRules("# header comment\n"
                               "layer tests tests/  # trailing\n"
                               "layer app   src/app/\n"
                               "allow tests -> *\n",
                               rules, error))
        << error;
    EXPECT_EQ(rules.layers.size(), 2u);
    EXPECT_EQ(rules.unrestricted.count("tests"), 1u);
    // Star layers may include anything without a declared edge.
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"tests/app_test.cc", "#include \"app/session.hh\"\n"},
    };
    EXPECT_TRUE(vd::checkDeps(files, rules).empty());
}

TEST(DepsRules, AllowGraphCycleReported)
{
    vd::Ruleset rules;
    std::string error;
    ASSERT_TRUE(vd::parseRules("layer a src/a/\n"
                               "layer b src/b/\n"
                               "allow a -> b\n"
                               "allow b -> a\n",
                               rules, error))
        << error;
    auto violations = vd::checkDeps({}, rules);
    ASSERT_EQ(countKind(violations, "rules"), 1u);
    EXPECT_NE(violations[0].message.find("cycle"), std::string::npos);
}

// --- engine details -------------------------------------------------------------

TEST(DepsEngine, LongestPrefixWinsLayerAssignment)
{
    vd::Ruleset rules;
    std::string error;
    ASSERT_TRUE(vd::parseRules("layer src     src/\n"
                               "layer support src/support/\n",
                               rules, error))
        << error;
    EXPECT_EQ(vd::layerOf("src/support/util.hh", rules), "support");
    EXPECT_EQ(vd::layerOf("src/app/session.hh", rules), "src");
    EXPECT_EQ(vd::layerOf("bench/foo.cc", rules), "");
}

TEST(DepsEngine, CommentedOutIncludeIgnored)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"src/support/helper.hh",
         "#pragma once\n"
         "// #include \"app/session.hh\"\n"
         "/* #include \"app/session.hh\" */\n"},
    };
    EXPECT_TRUE(vd::checkDeps(files, twoLayerRules()).empty());
}

TEST(DepsEngine, UnresolvedIncludesAreOutOfScope)
{
    // System headers and out-of-tree includes resolve to nothing and
    // are never layering findings.
    std::vector<vd::FileInput> files = {
        {"src/support/helper.hh",
         "#pragma once\n"
         "#include <vector>\n"
         "#include \"third_party/magic.hh\"\n"},
    };
    EXPECT_TRUE(vd::checkDeps(files, twoLayerRules()).empty());
}

TEST(DepsEngine, RelativeIncludeResolvesThroughOwnDirectory)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"src/support/helper.hh",
         "#pragma once\n#include \"../app/session.hh\"\n"},
    };
    auto violations = vd::checkDeps(files, twoLayerRules());
    EXPECT_EQ(countKind(violations, "illegal-edge"), 1u);
}

TEST(DepsEngine, ViolationsAreOrderedAndFormatted)
{
    std::vector<vd::FileInput> files = {
        {"src/app/session.hh", kAppHeader},
        {"src/support/z.hh",
         "#pragma once\n#include \"app/session.hh\"\n"},
        {"src/support/a.hh",
         "#pragma once\n#include \"app/session.hh\"\n"},
    };
    auto violations = vd::checkDeps(files, twoLayerRules());
    ASSERT_EQ(violations.size(), 2u);
    EXPECT_LT(violations[0].file, violations[1].file);
    const std::string text = vd::formatViolation(violations[0]);
    EXPECT_NE(text.find("src/support/a.hh:2"), std::string::npos);
    EXPECT_NE(text.find("[illegal-edge]"), std::string::npos);
}
