/**
 * @file
 * Additional session-level coverage: the save command, focus through
 * the session, composition end-to-end, scene statistics plumbing, and
 * multi-target focus at the cut level.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "sim/tracer.hh"
#include "trace/builder.hh"
#include "trace/io.hh"
#include "trace/paje.hh"
#include "viz/svg.hh"
#include "workload/masterworker.hh"
#include "workload/nasdt.hh"

namespace va = viva::agg;
namespace vap = viva::app;
namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vt = viva::trace;
namespace vv = viva::viz;
namespace vw = viva::workload;

namespace
{

std::string
tempDir()
{
    auto dir =
        std::filesystem::temp_directory_path() / "viva_session_test";
    std::filesystem::create_directories(dir);
    return dir.string();
}

} // namespace

TEST(SessionSave, NativeRoundTrip)
{
    vap::Session session(vt::makeFigure1Trace());
    std::string path = tempDir() + "/fig1.viva";
    ASSERT_TRUE(session.saveTrace(path).ok());

    auto back = vt::readTraceFile(path);
    ASSERT_TRUE(back.ok()) << back.error().toString();
    EXPECT_EQ(back->containerCount(),
              session.trace().containerCount());
    EXPECT_EQ(back->pointCount(), session.trace().pointCount());
}

TEST(SessionSave, PajeByExtension)
{
    vap::Session session(vt::makeFigure1Trace());
    std::string path = tempDir() + "/fig1.paje";
    ASSERT_TRUE(session.saveTrace(path).ok());

    auto back = vt::readPajeTraceFile(path);
    ASSERT_TRUE(back.ok()) << back.error().toString();
    EXPECT_EQ(back->trace.containerCount(),
              session.trace().containerCount());
}

TEST(SessionSave, Command)
{
    vap::Session session(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(session);
    std::string path = tempDir() + "/cmd.viva";
    std::ostringstream out;
    EXPECT_TRUE(cli.execute("save " + path, out));
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(SessionFocus, FullDetailInsideSummariesOutside)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::mirrorPlatform(p, t);
    vap::Session session(std::move(t));

    std::size_t host_level = session.cut().visibleCount();
    ASSERT_TRUE(session.focus("adonis"));
    std::size_t focused = session.cut().visibleCount();
    // Adonis stays fully expanded (22 leaves) + griffon is one node +
    // the site-level leaves; far fewer than the full host level.
    EXPECT_LT(focused, host_level);
    auto griffon = session.trace().findByName("griffon");
    EXPECT_TRUE(session.cut().isCollapsed(griffon));
    auto a3 = session.trace().findByName("adonis-3");
    EXPECT_TRUE(session.cut().isVisible(a3));
    // The layout followed the cut.
    EXPECT_EQ(session.layoutGraph().nodeCount(), focused);
    EXPECT_FALSE(session.focus("nope"));
}

TEST(HierarchyCutFocus, MultipleTargets)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::mirrorPlatform(p, t);
    auto adonis = t.findByName("adonis");
    auto griffon = t.findByName("griffon");

    va::HierarchyCut cut(t);
    cut.focus({adonis, griffon});
    // Both clusters expanded: this equals the full leaf view here
    // (nothing else to collapse but the clusters).
    EXPECT_FALSE(cut.isCollapsed(adonis));
    EXPECT_FALSE(cut.isCollapsed(griffon));
    for (auto leaf : t.leavesUnder(adonis))
        EXPECT_TRUE(cut.isVisible(leaf));
}

TEST(SessionComposition, PieVisibleEndToEnd)
{
    // A small two-app run whose site-level scene carries pie segments.
    viva::support::Rng rng(31);
    vp::Platform plat = vp::makeSyntheticGrid(2, 1, 3, rng);
    vs::SimulationRun run(plat, {"a", "b"});
    vw::MwParams pa;
    pa.name = "a";
    pa.master = vp::HostId{0};
    pa.workers = vw::allHostsExcept(plat, {vp::HostId{0}});
    pa.totalTasks = 10;
    pa.taskMflop = 1000.0;
    vw::MwParams pb = pa;
    pb.name = "b";
    vw::MasterWorkerApp a(run, pa, 1);
    vw::MasterWorkerApp b(run, pb, 2);
    a.start();
    b.start();
    run.engine.run();

    vap::Session session(std::move(run.trace));
    vv::CompositionRule comp;
    comp.parts = {session.trace().findMetric("power_used:a"),
                  session.trace().findMetric("power_used:b")};
    comp.total = session.trace().findMetric("power");
    session.mapping().setComposition(comp);

    session.aggregateToDepth(1);  // whole grid as one node
    session.setTimeSlice(session.span());
    vv::Scene scene = session.scene();
    ASSERT_EQ(scene.nodes.size(), 1u);
    ASSERT_EQ(scene.nodes[0].segments.size(), 2u);
    EXPECT_GT(scene.nodes[0].segments[0].fraction, 0.0);

    // And the SVG contains the wedges.
    std::ostringstream svg;
    vv::writeSvg(scene, svg);
    EXPECT_NE(svg.str().find("<path d=\"M"), std::string::npos);
}

TEST(SessionScene, WithStatsTogglesHeterogeneity)
{
    // Heterogeneous host powers inside one cluster.
    vt::TraceBuilder builder;
    auto power = builder.powerMetric();
    builder.beginGroup("c", vt::ContainerKind::Cluster);
    auto h1 = builder.host("h1");
    auto h2 = builder.host("h2");
    builder.endGroup();
    builder.trace().variable(h1, power).set(0.0, 1.0);
    builder.trace().variable(h2, power).set(0.0, 99.0);
    vap::Session session(builder.take());
    session.aggregateToDepth(1);

    vv::Scene plain = session.scene();
    EXPECT_DOUBLE_EQ(plain.nodes[0].heterogeneity, 0.0);
    vv::Scene with_stats = session.scene({}, /*with_stats=*/true);
    EXPECT_GT(with_stats.nodes[0].heterogeneity, 0.9);
}

TEST(SessionAnimate, StatePiesInFrames)
{
    vp::Platform plat = vp::makeTwoClusterPlatform();
    vs::SimulationRun run(plat);
    vw::DtParams params;
    params.cycles = 2;
    params.recordStates = true;
    vw::runNasDtWhiteHole(run, params,
                          vw::sequentialDeployment(plat, params));

    vap::Session session(std::move(run.trace));
    session.aggregateToDepth(3);
    vv::SceneOptions options;
    options.statePies = true;
    vv::Scene scene = session.scene(options);
    bool any_pie = false;
    for (const auto &n : scene.nodes)
        any_pie |= !n.segments.empty();
    EXPECT_TRUE(any_pie);
}

TEST(SessionCharge, AggregatedNodeChargeIsSummed)
{
    vp::Platform p = vp::makeTwoClusterPlatform();
    vt::Trace t;
    vp::mirrorPlatform(p, t);
    vap::Session session(std::move(t));

    session.aggregate("adonis");
    auto adonis = session.trace().findByName("adonis");
    auto node = session.layoutGraph().findKey(adonis.value());
    ASSERT_NE(node, viva::layout::kNoNode);
    // 11 hosts + 11 host links + switch = 23 leaves.
    EXPECT_DOUBLE_EQ(session.layoutGraph().node(node).charge, 23.0);
}
