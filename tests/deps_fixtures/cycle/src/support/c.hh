#pragma once
#include "support/a.hh"
