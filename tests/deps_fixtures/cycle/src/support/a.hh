#pragma once
#include "support/b.hh"
