#pragma once
#include "support/c.hh"
