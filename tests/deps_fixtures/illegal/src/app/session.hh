#pragma once
inline int sessionValue() { return 3; }
