#pragma once
#include "app/session.hh"
inline int helperValue() { return 2; }
