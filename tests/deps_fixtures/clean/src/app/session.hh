#pragma once
#include "layout/graph.hh"
#include "support/base.hh"
inline int sessionValue() { return graphValue() + baseValue(); }
