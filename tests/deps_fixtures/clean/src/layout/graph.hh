#pragma once
#include "support/base.hh"
inline int graphValue() { return baseValue() + 1; }
