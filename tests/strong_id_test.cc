/**
 * @file
 * Tests for support::StrongId: the negative-compile guarantees are
 * checked with static_asserts over type traits (a NodeId/ContainerId
 * swap must be a type error, not a runtime surprise), and the runtime
 * surface -- ordering, hashing, formatting, index/value round-trips --
 * is exercised on the repository's real id aliases.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "agg/timeslice.hh"
#include "layout/graph.hh"
#include "layout/quadtree.hh"
#include "platform/platform.hh"
#include "support/strong_id.hh"
#include "trace/container.hh"
#include "trace/metric.hh"

namespace vs = viva::support;
namespace vt = viva::trace;
namespace vp = viva::platform;
namespace vl = viva::layout;
namespace va = viva::agg;

// --- compile-time guarantees ----------------------------------------------------
//
// These are the point of the whole exercise: every mixing of id spaces
// that used to compile with raw uint32_t aliases must now be rejected.

// No cross-tag conversion or construction, in either direction.
static_assert(!std::is_convertible_v<vl::NodeId, vt::ContainerId>);
static_assert(!std::is_convertible_v<vt::ContainerId, vl::NodeId>);
static_assert(!std::is_constructible_v<vt::ContainerId, vl::NodeId>);
static_assert(!std::is_constructible_v<vl::NodeId, vt::ContainerId>);
static_assert(!std::is_constructible_v<vp::HostId, vp::LinkId>);
static_assert(!std::is_constructible_v<vp::LinkId, vp::GroupId>);
static_assert(!std::is_constructible_v<va::SliceIndex, vt::MetricId>);

// No implicit construction from raw integers: a loose `42` cannot
// sneak into an id-typed parameter (explicit construction still works).
static_assert(!std::is_convertible_v<std::uint32_t, vt::ContainerId>);
static_assert(!std::is_convertible_v<int, vl::NodeId>);
static_assert(std::is_constructible_v<vt::ContainerId, std::uint32_t>);

// No implicit decay back to integers either: arithmetic or untyped
// storage must spell .value() or .index().
static_assert(!std::is_convertible_v<vt::ContainerId, std::uint32_t>);
static_assert(!std::is_convertible_v<vl::NodeId, std::size_t>);

// Cross-tag comparison does not compile. (SFINAE probe: equality is
// only found for same-tag operands.)
template <typename A, typename B, typename = void>
struct CanEq : std::false_type
{
};
template <typename A, typename B>
struct CanEq<A, B,
             std::void_t<decltype(std::declval<A>() ==
                                  std::declval<B>())>> : std::true_type
{
};

static_assert(CanEq<vl::NodeId, vl::NodeId>::value);
static_assert(!CanEq<vl::NodeId, vt::ContainerId>::value);
static_assert(!CanEq<vp::HostId, vp::LinkId>::value);
static_assert(!CanEq<vl::NodeId, std::uint32_t>::value);

// Zero-cost: the wrapper is exactly its integer, trivially copyable.
static_assert(sizeof(vt::ContainerId) == sizeof(std::uint32_t));
static_assert(sizeof(vt::MetricId) == sizeof(std::uint16_t));
static_assert(sizeof(vl::CellId) == sizeof(std::int32_t));
static_assert(std::is_trivially_copyable_v<vt::ContainerId>);
static_assert(std::is_trivially_destructible_v<vl::NodeId>);

// The trait sees through aliases and nothing else.
static_assert(vs::isStrongId<vt::ContainerId>);
static_assert(vs::isStrongId<va::SliceIndex>);
static_assert(!vs::isStrongId<std::uint32_t>);

// Everything below is constexpr-friendly.
static_assert(vt::ContainerId{7}.value() == 7u);
static_assert(vt::ContainerId::fromIndex(9).index() == 9u);
static_assert(vl::NodeId{3} < vl::NodeId{4});
static_assert(vl::kNoCell.value() == -1);

// --- runtime behaviour ----------------------------------------------------------

TEST(StrongId, RoundTripsValueAndIndex)
{
    vt::ContainerId id{41u};
    EXPECT_EQ(id.value(), 41u);
    EXPECT_EQ(id.index(), std::size_t{41});
    EXPECT_EQ(vt::ContainerId::fromIndex(id.index()), id);
    EXPECT_EQ(vt::ContainerId{}.value(), 0u);
}

TEST(StrongId, OrderingMatchesUnderlying)
{
    vp::HostId a{2}, b{5};
    EXPECT_LT(a, b);
    EXPECT_LE(a, a);
    EXPECT_NE(a, b);
    EXPECT_EQ(std::max(a, b), b);
}

TEST(StrongId, IncrementDrivesTypedLoops)
{
    std::size_t seen = 0;
    for (vp::HostId h{0}; h.index() < 4; ++h)
        ++seen;
    EXPECT_EQ(seen, 4u);

    vl::NodeId n{7};
    EXPECT_EQ((n++).value(), 7u);
    EXPECT_EQ(n.value(), 8u);
    EXPECT_EQ((++n).value(), 9u);
}

TEST(StrongId, HashesLikeTheRawInteger)
{
    EXPECT_EQ(std::hash<vt::ContainerId>{}(vt::ContainerId{99}),
              std::hash<std::uint32_t>{}(99u));

    std::unordered_set<vp::HostId> hosts;
    for (std::uint32_t i = 0; i < 100; ++i)
        hosts.insert(vp::HostId{i % 10});
    EXPECT_EQ(hosts.size(), 10u);

    std::unordered_map<vt::ContainerId, int> by_id;
    by_id[vt::ContainerId{3}] = 30;
    by_id[vt::ContainerId{3}] = 31;
    EXPECT_EQ(by_id.size(), 1u);
    EXPECT_EQ(by_id.at(vt::ContainerId{3}), 31);
}

TEST(StrongId, FormatsAsTheRawInteger)
{
    std::ostringstream out;
    out << vt::ContainerId{12} << ' ' << vl::kNoCell << ' '
        << vt::MetricId{7};
    EXPECT_EQ(out.str(), "12 -1 7");
}

TEST(StrongId, SignedUnderlyingSupportsSentinels)
{
    vl::CellId cell{-1};
    EXPECT_EQ(cell, vl::kNoCell);
    EXPECT_LT(cell, vl::CellId{0});
    EXPECT_EQ(vl::CellId::fromIndex(5).index(), 5u);
}
