/**
 * @file
 * Unit tests for viva::trace: variables, the container hierarchy,
 * metrics, relations, serialization and the builder.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/builder.hh"
#include "trace/io.hh"
#include "trace/trace.hh"
#include "trace/variable.hh"

namespace vt = viva::trace;

// --- Variable ---------------------------------------------------------------

TEST(Variable, EmptyIsZeroEverywhere)
{
    vt::Variable v;
    EXPECT_TRUE(v.empty());
    EXPECT_DOUBLE_EQ(v.valueAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(v.valueAt(100.0), 0.0);
    EXPECT_DOUBLE_EQ(v.integrate(0.0, 10.0), 0.0);
}

TEST(Variable, ValueHoldsUntilNextChange)
{
    vt::Variable v;
    v.set(1.0, 10.0);
    v.set(5.0, 20.0);
    EXPECT_DOUBLE_EQ(v.valueAt(0.5), 0.0);   // before first point
    EXPECT_DOUBLE_EQ(v.valueAt(1.0), 10.0);
    EXPECT_DOUBLE_EQ(v.valueAt(4.999), 10.0);
    EXPECT_DOUBLE_EQ(v.valueAt(5.0), 20.0);
    EXPECT_DOUBLE_EQ(v.valueAt(1000.0), 20.0);
}

TEST(Variable, SetAtSameTimeOverwrites)
{
    vt::Variable v;
    v.set(2.0, 5.0);
    v.set(2.0, 7.0);
    EXPECT_EQ(v.pointCount(), 1u);
    EXPECT_DOUBLE_EQ(v.valueAt(2.0), 7.0);
}

TEST(Variable, OutOfOrderInsert)
{
    vt::Variable v;
    v.set(10.0, 3.0);
    v.set(5.0, 1.0);
    v.set(7.5, 2.0);
    EXPECT_DOUBLE_EQ(v.valueAt(6.0), 1.0);
    EXPECT_DOUBLE_EQ(v.valueAt(8.0), 2.0);
    EXPECT_DOUBLE_EQ(v.valueAt(11.0), 3.0);
    EXPECT_EQ(v.pointCount(), 3u);
}

TEST(Variable, AddIsRelative)
{
    vt::Variable v;
    v.set(0.0, 10.0);
    v.add(5.0, -3.0);
    v.add(5.0, -2.0);  // stacking at the same instant
    EXPECT_DOUBLE_EQ(v.valueAt(5.0), 5.0);
    EXPECT_DOUBLE_EQ(v.valueAt(4.0), 10.0);
}

TEST(Variable, IntegrateExactRectangles)
{
    vt::Variable v;
    v.set(0.0, 2.0);
    v.set(4.0, 6.0);
    v.set(8.0, 0.0);
    // [0,4): 2*4 = 8 ; [4,8): 6*4 = 24 ; [8,12): 0
    EXPECT_DOUBLE_EQ(v.integrate(0.0, 12.0), 32.0);
    EXPECT_DOUBLE_EQ(v.integrate(2.0, 6.0), 2.0 * 2 + 6.0 * 2);
    EXPECT_DOUBLE_EQ(v.integrate(5.0, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(v.integrate(-4.0, 2.0), 2.0 * 2);  // zero before t=0
}

TEST(Variable, IntegrateIsAdditive)
{
    vt::Variable v;
    v.set(0.0, 1.0);
    v.set(1.5, 4.0);
    v.set(3.25, 2.5);
    v.set(9.0, 0.5);
    double whole = v.integrate(0.0, 12.0);
    double parts = v.integrate(0.0, 2.0) + v.integrate(2.0, 7.7) +
                   v.integrate(7.7, 12.0);
    EXPECT_NEAR(whole, parts, 1e-12);
}

TEST(Variable, AverageMatchesIntegral)
{
    vt::Variable v;
    v.set(0.0, 10.0);
    v.set(5.0, 0.0);
    EXPECT_DOUBLE_EQ(v.average(0.0, 10.0), 5.0);
    // Zero-length slice degenerates to the instantaneous value.
    EXPECT_DOUBLE_EQ(v.average(3.0, 3.0), 10.0);
}

TEST(Variable, MinMaxOverWindow)
{
    vt::Variable v;
    v.set(0.0, 5.0);
    v.set(2.0, 9.0);
    v.set(4.0, 1.0);
    EXPECT_DOUBLE_EQ(v.maxOver(0.0, 10.0), 9.0);
    EXPECT_DOUBLE_EQ(v.minOver(0.0, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(v.maxOver(0.0, 2.0), 5.0);  // change at 2 excluded
    EXPECT_DOUBLE_EQ(v.maxOver(2.5, 3.5), 9.0);
}

TEST(Variable, CompactRemovesRepeats)
{
    vt::Variable v;
    v.set(0.0, 1.0);
    v.set(1.0, 1.0);
    v.set(2.0, 2.0);
    v.set(3.0, 2.0);
    v.set(4.0, 1.0);
    EXPECT_EQ(v.compact(), 2u);
    EXPECT_EQ(v.pointCount(), 3u);
    EXPECT_DOUBLE_EQ(v.valueAt(1.5), 1.0);
    EXPECT_DOUBLE_EQ(v.valueAt(3.5), 2.0);
    EXPECT_DOUBLE_EQ(v.valueAt(4.5), 1.0);
}

TEST(Variable, FirstLastTime)
{
    vt::Variable v;
    v.set(3.0, 1.0);
    v.set(8.0, 2.0);
    EXPECT_DOUBLE_EQ(v.firstTime(), 3.0);
    EXPECT_DOUBLE_EQ(v.lastTime(), 8.0);
}

// --- Trace containers ------------------------------------------------------

TEST(Trace, RootExists)
{
    vt::Trace t;
    EXPECT_EQ(t.containerCount(), 1u);
    EXPECT_EQ(t.container(t.root()).kind, vt::ContainerKind::Root);
    EXPECT_EQ(t.container(t.root()).depth, 0);
}

TEST(Trace, HierarchyConstruction)
{
    vt::Trace t;
    auto site = t.addContainer("lyon", vt::ContainerKind::Site, t.root());
    auto cluster =
        t.addContainer("sagittaire", vt::ContainerKind::Cluster, site);
    auto host = t.addContainer("sagittaire-1", vt::ContainerKind::Host,
                               cluster);
    EXPECT_EQ(t.container(host).depth, 3);
    EXPECT_EQ(t.container(host).parent, cluster);
    EXPECT_EQ(t.fullName(host), "lyon/sagittaire/sagittaire-1");
    EXPECT_EQ(t.findByPath("lyon/sagittaire/sagittaire-1"), host);
    EXPECT_EQ(t.findByPath("lyon/nope"), vt::kNoContainer);
    EXPECT_EQ(t.findByPath(""), t.root());
    EXPECT_EQ(t.findChild(site, "sagittaire"), cluster);
    EXPECT_EQ(t.findChild(site, "x"), vt::kNoContainer);
}

TEST(Trace, FindByNameUniqueAndAmbiguous)
{
    vt::Trace t;
    auto a = t.addContainer("a", vt::ContainerKind::Site, t.root());
    auto b = t.addContainer("b", vt::ContainerKind::Site, t.root());
    t.addContainer("h", vt::ContainerKind::Host, a);
    EXPECT_EQ(t.findByName("h"), t.findByPath("a/h"));
    t.addContainer("h", vt::ContainerKind::Host, b);
    EXPECT_EQ(t.findByName("h"), vt::kNoContainer);  // ambiguous now
}

TEST(TraceDeath, DuplicateSiblingIsFatal)
{
    vt::Trace t;
    t.addContainer("x", vt::ContainerKind::Host, t.root());
    EXPECT_DEATH(t.addContainer("x", vt::ContainerKind::Host, t.root()),
                 "duplicate");
}

TEST(Trace, SubtreeAndLeaves)
{
    vt::Trace t;
    auto s = t.addContainer("s", vt::ContainerKind::Site, t.root());
    auto c1 = t.addContainer("c1", vt::ContainerKind::Cluster, s);
    auto c2 = t.addContainer("c2", vt::ContainerKind::Cluster, s);
    auto h1 = t.addContainer("h1", vt::ContainerKind::Host, c1);
    auto h2 = t.addContainer("h2", vt::ContainerKind::Host, c1);
    auto h3 = t.addContainer("h3", vt::ContainerKind::Host, c2);

    auto sub = t.subtree(s);
    EXPECT_EQ(sub.size(), 6u);
    EXPECT_EQ(sub[0], s);  // preorder: s first

    auto leaves = t.leavesUnder(s);
    EXPECT_EQ(leaves, (std::vector<vt::ContainerId>{h1, h2, h3}));
    EXPECT_EQ(t.leavesUnder(h1),
              (std::vector<vt::ContainerId>{h1}));
}

TEST(Trace, AncestorQueries)
{
    vt::Trace t;
    auto s = t.addContainer("s", vt::ContainerKind::Site, t.root());
    auto c = t.addContainer("c", vt::ContainerKind::Cluster, s);
    auto h = t.addContainer("h", vt::ContainerKind::Host, c);
    EXPECT_TRUE(t.isAncestorOrSelf(s, h));
    EXPECT_TRUE(t.isAncestorOrSelf(h, h));
    EXPECT_FALSE(t.isAncestorOrSelf(h, s));
    EXPECT_EQ(t.ancestorAtDepth(h, 0), t.root());
    EXPECT_EQ(t.ancestorAtDepth(h, 1), s);
    EXPECT_EQ(t.ancestorAtDepth(h, 2), c);
    EXPECT_EQ(t.ancestorAtDepth(h, 3), h);
    EXPECT_EQ(t.ancestorAtDepth(h, 9), h);
}

TEST(Trace, ContainersOfKind)
{
    vt::Trace t;
    auto s = t.addContainer("s", vt::ContainerKind::Site, t.root());
    t.addContainer("h1", vt::ContainerKind::Host, s);
    t.addContainer("l1", vt::ContainerKind::Link, s);
    t.addContainer("h2", vt::ContainerKind::Host, s);
    EXPECT_EQ(t.containersOfKind(vt::ContainerKind::Host).size(), 2u);
    EXPECT_EQ(t.containersOfKind(vt::ContainerKind::Link).size(), 1u);
    EXPECT_EQ(t.containersOfKind(vt::ContainerKind::Router).size(), 0u);
}

// --- metrics and variables ----------------------------------------------------

TEST(Trace, MetricRegistrationIsIdempotent)
{
    vt::Trace t;
    auto power = t.addMetric("power", "MFlops",
                             vt::MetricNature::Capacity);
    auto again = t.addMetric("power", "ignored",
                             vt::MetricNature::Gauge);
    EXPECT_EQ(power, again);
    EXPECT_EQ(t.metricCount(), 1u);
    EXPECT_EQ(t.metric(power).unit, "MFlops");
    EXPECT_EQ(t.metric(power).nature, vt::MetricNature::Capacity);
    EXPECT_EQ(t.findMetric("power"), power);
    EXPECT_EQ(t.findMetric("nope"), vt::kNoMetric);
}

TEST(Trace, UtilizationLinksToCapacity)
{
    vt::Trace t;
    auto cap = t.addMetric("bandwidth", "Mbit/s",
                           vt::MetricNature::Capacity);
    auto used = t.addMetric("bandwidth_used", "Mbit/s",
                            vt::MetricNature::Utilization, cap);
    EXPECT_EQ(t.metric(used).capacityOf, cap);
}

TEST(Trace, VariablesCreatedOnDemand)
{
    vt::Trace t;
    auto h = t.addContainer("h", vt::ContainerKind::Host, t.root());
    auto m = t.addMetric("power", "MFlops", vt::MetricNature::Capacity);
    EXPECT_EQ(t.findVariable(h, m), nullptr);
    EXPECT_FALSE(t.hasVariable(h, m));
    t.variable(h, m).set(0.0, 100.0);
    EXPECT_TRUE(t.hasVariable(h, m));
    EXPECT_DOUBLE_EQ(t.findVariable(h, m)->valueAt(1.0), 100.0);
    EXPECT_EQ(t.variableCount(), 1u);
    EXPECT_EQ(t.pointCount(), 1u);
}

// --- relations and states ---------------------------------------------------

TEST(Trace, RelationsDeduplicateAndIgnoreSelf)
{
    vt::Trace t;
    auto a = t.addContainer("a", vt::ContainerKind::Host, t.root());
    auto b = t.addContainer("b", vt::ContainerKind::Host, t.root());
    t.addRelation(a, b);
    t.addRelation(b, a);  // same undirected edge
    t.addRelation(a, a);  // self loop dropped
    EXPECT_EQ(t.relations().size(), 1u);
    EXPECT_EQ(t.neighbors(a), (std::vector<vt::ContainerId>{b}));
    EXPECT_EQ(t.neighbors(b), (std::vector<vt::ContainerId>{a}));
}

TEST(Trace, StatesRecorded)
{
    vt::Trace t;
    auto h = t.addContainer("h", vt::ContainerKind::Host, t.root());
    t.addState(h, 0.0, 2.0, "compute");
    t.addState(h, 2.0, 3.0, "wait");
    ASSERT_EQ(t.states().size(), 2u);
    EXPECT_EQ(t.states()[1].state, "wait");
}

TEST(Trace, SpanCoversVariablesAndStates)
{
    vt::Trace t;
    auto h = t.addContainer("h", vt::ContainerKind::Host, t.root());
    auto m = t.addMetric("power", "", vt::MetricNature::Capacity);
    t.variable(h, m).set(2.0, 1.0);
    t.variable(h, m).set(9.0, 2.0);
    t.addState(h, 0.5, 3.0, "s");
    EXPECT_DOUBLE_EQ(t.span().begin, 0.5);
    EXPECT_DOUBLE_EQ(t.span().end, 9.0);
}

// --- io ----------------------------------------------------------------------

TEST(TraceIo, RoundTrip)
{
    vt::Trace t = vt::makeFigure1Trace();
    std::ostringstream out;
    vt::writeTrace(t, out);

    std::istringstream in(out.str());
        auto back = vt::readTrace(in);
    ASSERT_TRUE(back.has_value()) << back.error().toString();

    EXPECT_EQ(back->containerCount(), t.containerCount());
    EXPECT_EQ(back->metricCount(), t.metricCount());
    EXPECT_EQ(back->relations().size(), t.relations().size());
    EXPECT_EQ(back->pointCount(), t.pointCount());

    // Identical serialization is the strongest round-trip check.
    std::ostringstream out2;
    vt::writeTrace(*back, out2);
    EXPECT_EQ(out.str(), out2.str());
}

TEST(TraceIo, NamesWithSpacesSurvive)
{
    vt::Trace t;
    auto h = t.addContainer("my host 1", vt::ContainerKind::Host,
                            t.root());
    auto m = t.addMetric("power used now", "MFlops",
                         vt::MetricNature::Gauge);
    t.variable(h, m).set(1.0, 2.0);
    t.addState(h, 0.0, 1.0, "waiting for data");

    std::ostringstream out;
    vt::writeTrace(t, out);
    std::istringstream in(out.str());
        auto back = vt::readTrace(in);
    ASSERT_TRUE(back.has_value()) << back.error().toString();
    EXPECT_NE(back->findByPath("my host 1"), vt::kNoContainer);
    EXPECT_NE(back->findMetric("power used now"), vt::kNoMetric);
    EXPECT_EQ(back->states()[0].state, "waiting for data");
}

TEST(TraceIo, RejectsMissingHeader)
{
    std::istringstream in("container 1 - host h\n");
    auto result = vt::readTrace(in);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().toString().find("header"),
              std::string::npos);
}

TEST(TraceIo, RejectsBadParent)
{
    std::istringstream in("viva-trace 1\ncontainer 1 99 host h\n");
    auto result = vt::readTrace(in);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().toString().find("parent"),
              std::string::npos);
}

TEST(TraceIo, RejectsUnknownVerb)
{
    std::istringstream in("viva-trace 1\nfrobnicate 1 2\n");
        EXPECT_FALSE(vt::readTrace(in).has_value());
}

TEST(TraceIo, RejectsPointWithUnknownIds)
{
    std::istringstream in("viva-trace 1\np 5 0 0 1\n");
    EXPECT_FALSE(vt::readTrace(in).has_value());
}

TEST(TraceIo, SkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "viva-trace 1\n\n# a comment\ncontainer 1 - host h\n");
        auto t = vt::readTrace(in);
    ASSERT_TRUE(t.has_value()) << t.error().toString();
    EXPECT_EQ(t->containerCount(), 2u);
}

// --- builder -------------------------------------------------------------------

TEST(TraceBuilder, GroupNesting)
{
    vt::TraceBuilder b;
    b.beginGroup("site", vt::ContainerKind::Site);
    b.beginGroup("cluster", vt::ContainerKind::Cluster);
    auto h = b.host("h1");
    b.endGroup();
    b.endGroup();
    EXPECT_EQ(b.trace().fullName(h), "site/cluster/h1");
}

TEST(TraceBuilder, ConventionalMetrics)
{
    vt::TraceBuilder b;
    auto used = b.powerUsedMetric();
    auto power = b.powerMetric();
    EXPECT_EQ(b.trace().metric(used).capacityOf, power);
    EXPECT_EQ(b.trace().metric(used).nature,
              vt::MetricNature::Utilization);
}

TEST(Figure1Trace, MatchesThePaperScenario)
{
    vt::Trace t = vt::makeFigure1Trace();
    auto host_a = t.findByPath("HostA");
    auto host_b = t.findByPath("HostB");
    auto link_a = t.findByPath("LinkA");
    ASSERT_NE(host_a, vt::kNoContainer);
    ASSERT_NE(host_b, vt::kNoContainer);
    ASSERT_NE(link_a, vt::kNoContainer);

    auto power = t.findMetric("power");
    // Cursor A (t=1): HostA at 100, HostB at 25 (four-times smaller).
    EXPECT_DOUBLE_EQ(t.findVariable(host_a, power)->valueAt(1.0), 100.0);
    EXPECT_DOUBLE_EQ(t.findVariable(host_b, power)->valueAt(1.0), 25.0);
    // Cursor B (t=6): HostB (40) now bigger than HostA (10) -- Fig. 4 B.
    EXPECT_DOUBLE_EQ(t.findVariable(host_a, power)->valueAt(6.0), 10.0);
    EXPECT_DOUBLE_EQ(t.findVariable(host_b, power)->valueAt(6.0), 40.0);
    // The link is related to both hosts.
    EXPECT_EQ(t.neighbors(link_a).size(), 2u);
    EXPECT_DOUBLE_EQ(t.span().end, 12.0);
}
