/**
 * @file
 * Cross-cutting property tests on randomized inputs: conservation laws
 * of the simulator, determinism, partition invariants of hierarchy
 * cuts, treemap geometry, and routing consistency. These pin down the
 * global invariants that unit tests of single modules cannot.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "agg/aggregate.hh"
#include "agg/hierarchy_cut.hh"
#include "platform/builders.hh"
#include "sim/tracer.hh"
#include "support/random.hh"
#include "trace/io.hh"
#include "viz/treemap.hh"

namespace va = viva::agg;
namespace vp = viva::platform;
namespace vs = viva::sim;
namespace vt = viva::trace;
namespace vv = viva::viz;

// --- simulator conservation laws ---------------------------------------------

class EngineConservation : public ::testing::TestWithParam<int>
{
  protected:
    /** Random mix of computes and comms on a synthetic grid. */
    struct Workload
    {
        double totalMflop = 0.0;
        double totalMbit = 0.0;
    };

    static Workload
    inject(vs::SimulationRun &run, viva::support::Rng &rng)
    {
        const vp::Platform &plat = run.engine.platform();
        Workload w;
        int n = 20 + int(rng.index(40));
        for (int i = 0; i < n; ++i) {
            double start = rng.uniform(0.0, 2.0);
            if (rng.uniform() < 0.5) {
                double mflop = rng.uniform(100.0, 5000.0);
                auto host = vp::HostId(rng.index(plat.hostCount()));
                w.totalMflop += mflop;
                run.engine.at(start, [&run, host, mflop] {
                    run.engine.startCompute(host, mflop, [] {});
                });
            } else {
                auto src = vp::HostId(rng.index(plat.hostCount()));
                auto dst = vp::HostId(rng.index(plat.hostCount()));
                if (src == dst)
                    continue;
                double mbits = rng.uniform(1.0, 200.0);
                // Each crossed link carries the full payload.
                w.totalMbit +=
                    mbits * double(plat.route(src, dst).links.size());
                run.engine.at(start, [&run, src, dst, mbits] {
                    run.engine.startComm(src, dst, mbits, [] {});
                });
            }
        }
        return w;
    }
};

TEST_P(EngineConservation, TracedWorkEqualsInjectedWork)
{
    viva::support::Rng rng(GetParam());
    vp::Platform plat = vp::makeSyntheticGrid(2, 2, 3, rng);
    vs::SimulationRun run(plat);
    Workload injected = inject(run, rng);
    run.engine.run();
    ASSERT_TRUE(run.engine.idle());

    // Integrate the traced utilization over the whole run: it must
    // equal the injected work exactly (the fluid model conserves it).
    va::TimeSlice span = run.trace.span();
    va::Aggregator agg(run.trace);
    double traced_mflop =
        agg.value(run.trace.root(), run.mirror.powerUsed, span,
                  va::SpatialOp::Sum, va::TemporalOp::Integral);
    double traced_mbit =
        agg.value(run.trace.root(), run.mirror.bandwidthUsed, span,
                  va::SpatialOp::Sum, va::TemporalOp::Integral);

    EXPECT_NEAR(traced_mflop, injected.totalMflop,
                1e-6 * std::max(1.0, injected.totalMflop));
    EXPECT_NEAR(traced_mbit, injected.totalMbit,
                1e-6 * std::max(1.0, injected.totalMbit));
}

TEST_P(EngineConservation, DeterministicReplay)
{
    auto run_once = [&](int seed) {
        viva::support::Rng rng(seed);
        vp::Platform plat = vp::makeSyntheticGrid(2, 2, 3, rng);
        vs::SimulationRun run(plat);
        inject(run, rng);
        run.engine.run();
        std::ostringstream out;
        vt::writeTrace(run.trace, out);
        return out.str();
    };
    EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

TEST_P(EngineConservation, RunInPiecesMatchesRunWhole)
{
    auto run_with_steps = [&](int seed, bool stepped) {
        viva::support::Rng rng(seed);
        vp::Platform plat = vp::makeSyntheticGrid(2, 2, 3, rng);
        vs::SimulationRun run(plat);
        inject(run, rng);
        if (stepped) {
            for (double t = 0.5; !run.engine.idle() && t < 1000.0;
                 t += 0.7)
                run.engine.run(t);
        }
        run.engine.run();
        va::Aggregator agg(run.trace);
        return agg.value(run.trace.root(), run.mirror.powerUsed,
                         run.trace.span(), va::SpatialOp::Sum,
                         va::TemporalOp::Integral);
    };
    double whole = run_with_steps(GetParam(), false);
    double pieces = run_with_steps(GetParam(), true);
    EXPECT_NEAR(whole, pieces, 1e-6 * std::max(1.0, whole));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineConservation,
                         ::testing::Range(1, 13));

// --- hierarchy cut partition invariant -------------------------------------------

class CutPartition : public ::testing::TestWithParam<int>
{
};

TEST_P(CutPartition, VisibleNodesPartitionTheLeaves)
{
    viva::support::Rng rng(GetParam());
    vp::Platform plat = vp::makeSyntheticGrid(
        1 + rng.index(3), 1 + rng.index(3), 1 + rng.index(5), rng);
    vt::Trace trace;
    vp::mirrorPlatform(plat, trace);

    va::HierarchyCut cut(trace);
    // Random sequence of aggregate / disaggregate operations.
    for (int op = 0; op < 30; ++op) {
        auto id = vt::ContainerId(rng.index(trace.containerCount()));
        if (rng.uniform() < 0.6)
            cut.aggregate(id);
        else
            cut.disaggregate(id);
    }

    // Every leaf must be covered by exactly one visible node.
    auto visible = cut.visibleNodes();
    std::vector<int> covered(trace.containerCount(), 0);
    for (auto v : visible) {
        EXPECT_TRUE(cut.isVisible(v));
        for (auto leaf : trace.leavesUnder(v))
            ++covered[leaf.index()];
    }
    for (auto leaf : trace.leavesUnder(trace.root()))
        EXPECT_EQ(covered[leaf.index()], 1) << "leaf " << leaf;

    // representative() agrees with the covering node.
    for (auto v : visible)
        for (auto leaf : trace.leavesUnder(v))
            EXPECT_EQ(cut.representative(leaf), v);
}

TEST_P(CutPartition, ConservationUnderRandomCuts)
{
    viva::support::Rng rng(100 + GetParam());
    vp::Platform plat = vp::makeSyntheticGrid(2, 2, 4, rng);
    vt::Trace trace;
    auto mirror = vp::mirrorPlatform(plat, trace);

    va::HierarchyCut cut(trace);
    for (int op = 0; op < 20; ++op)
        cut.aggregate(vt::ContainerId(rng.index(trace.containerCount())));

    va::Aggregator agg(trace);
    double total = 0.0;
    for (auto v : cut.visibleNodes())
        total += agg.value(v, mirror.power, {0.0, 1.0});
    double expected = 0.0;
    for (vp::HostId h{0}; h.index() < plat.hostCount(); ++h)
        expected += plat.host(h).powerMflops;
    EXPECT_NEAR(total, expected, 1e-9 * expected);
}

TEST_P(CutPartition, FocusShowsTargetAndAggregatesRest)
{
    viva::support::Rng rng(200 + GetParam());
    vp::Platform plat = vp::makeSyntheticGrid(3, 2, 3, rng);
    vt::Trace trace;
    vp::mirrorPlatform(plat, trace);

    auto target = trace.findByName("site1-c0");
    ASSERT_NE(target, vt::kNoContainer);
    va::HierarchyCut cut(trace);
    cut.focus({target});

    // Every leaf under the target is visible itself.
    for (auto leaf : trace.leavesUnder(target))
        EXPECT_TRUE(cut.isVisible(leaf));
    // Other sites are single aggregated nodes.
    auto site2 = trace.findByName("site2");
    ASSERT_NE(site2, vt::kNoContainer);
    EXPECT_TRUE(cut.isCollapsed(site2));
    EXPECT_EQ(cut.representative(trace.leavesUnder(site2)[0]), site2);
    // The sibling cluster of the target is aggregated, not expanded.
    auto sibling = trace.findByName("site1-c1");
    EXPECT_TRUE(cut.isCollapsed(sibling));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutPartition, ::testing::Range(1, 9));

// --- treemap geometry -----------------------------------------------------------

class TreemapGeometry : public ::testing::TestWithParam<int>
{
};

TEST_P(TreemapGeometry, CellsStayInCanvasAndNest)
{
    viva::support::Rng rng(GetParam());
    vp::Platform plat = vp::makeSyntheticGrid(
        1 + rng.index(3), 1 + rng.index(3), 1 + rng.index(6), rng);
    vt::Trace trace;
    vp::mirrorPlatform(plat, trace);

    vv::TreemapOptions options;
    options.width = 640;
    options.height = 480;
    options.padding = rng.uniform(0.0, 3.0);
    vv::Treemap map = vv::buildTreemap(
        trace, trace.findMetric("power"), {0.0, 1.0}, options);
    ASSERT_FALSE(map.cells.empty());

    double leaf_area = 0.0;
    for (const auto &cell : map.cells) {
        EXPECT_GE(cell.x, -1e-9);
        EXPECT_GE(cell.y, -1e-9);
        EXPECT_LE(cell.x + cell.width, options.width + 1e-9);
        EXPECT_LE(cell.y + cell.height, options.height + 1e-9);
        EXPECT_GE(cell.width, 0.0);
        EXPECT_GE(cell.height, 0.0);
        if (cell.leaf)
            leaf_area += cell.area();
    }
    // With zero padding the leaves tile the canvas exactly; padding
    // only removes area.
    EXPECT_LE(leaf_area, 640.0 * 480.0 + 1e-6);
    if (options.padding < 1e-9) {
        EXPECT_NEAR(leaf_area, 640.0 * 480.0, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreemapGeometry, ::testing::Range(1, 9));

// --- routing consistency -----------------------------------------------------------

class RoutingConsistency : public ::testing::TestWithParam<int>
{
};

TEST_P(RoutingConsistency, RoutesAreConnectedPaths)
{
    viva::support::Rng rng(GetParam());
    vp::Platform plat = vp::makeGrid5000();

    for (int trial = 0; trial < 20; ++trial) {
        auto a = vp::HostId(rng.index(plat.hostCount()));
        auto b = vp::HostId(rng.index(plat.hostCount()));
        const vp::Route &route = plat.route(a, b);
        if (a == b) {
            EXPECT_TRUE(route.links.empty());
            continue;
        }
        ASSERT_FALSE(route.links.empty());

        // Forward and reverse routes have equal hop count (BFS).
        EXPECT_EQ(route.links.size(), plat.route(b, a).links.size());

        // The latency is the sum of the links' latencies.
        double latency = 0.0;
        for (auto l : route.links)
            latency += plat.link(l).latencyS;
        EXPECT_NEAR(route.latencyS, latency, 1e-12);

        // Consecutive links share a vertex (the path is connected):
        // verified through the adjacency lists.
        for (std::size_t i = 0; i + 1 < route.links.size(); ++i) {
            bool share = false;
            for (vp::VertexId v{0}; v.index() < plat.vertexCount() && !share;
                 ++v) {
                bool has_i = false, has_next = false;
                for (const auto &[other, l] : plat.edges(v)) {
                    has_i |= l == route.links[i];
                    has_next |= l == route.links[i + 1];
                }
                share = has_i && has_next;
            }
            EXPECT_TRUE(share) << "links " << i << " and " << i + 1
                               << " are disconnected";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingConsistency,
                         ::testing::Range(1, 4));
