/**
 * @file
 * Differential tests of the slice-query index (indexed vs linear-scan
 * temporal reductions) and of the hierarchy-closure cache behind the
 * parallel Equation-1 fold: the accelerated paths must agree with the
 * reference scans to 1e-12 relative error, and every mutating Trace
 * call must invalidate the caches so stale answers are impossible.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "agg/aggregate.hh"
#include "agg/hierarchy_cut.hh"
#include "support/random.hh"
#include "trace/builder.hh"
#include "trace/trace.hh"
#include "trace/variable.hh"

namespace va = viva::agg;
namespace vt = viva::trace;

namespace
{

/** Relative error normalized the way the Equation-1 audit does. */
double
relErr(double a, double b)
{
    return std::fabs(a - b) /
           std::max({1.0, std::fabs(a), std::fabs(b)});
}

constexpr double kTol = 1e-12;

/** A variable with `n` random change points on [0, 100). */
vt::Variable
randomVariable(std::size_t n, std::uint64_t seed)
{
    viva::support::Rng rng(seed);
    vt::Variable v;
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += rng.uniform(0.01, 100.0 / double(n ? n : 1));
        v.set(t, rng.uniform(-50.0, 50.0));
    }
    return v;
}

/** Every reduction, indexed vs scan, on one slice. */
void
expectAllOpsAgree(const vt::Variable &v, double a, double b)
{
    ASSERT_TRUE(v.indexed());
    EXPECT_LE(relErr(v.integrate(a, b), v.integrateScan(a, b)), kTol)
        << "integrate over [" << a << ", " << b << ")";
    EXPECT_EQ(v.maxOver(a, b), v.maxOverScan(a, b))
        << "maxOver over [" << a << ", " << b << ")";
    EXPECT_EQ(v.minOver(a, b), v.minOverScan(a, b))
        << "minOver over [" << a << ", " << b << ")";
    // average = integrate / width, so it inherits the integral bound;
    // check it anyway because it is the Equation-1 default.
    double width = b - a;
    if (width > 0.0) {
        EXPECT_LE(relErr(v.average(a, b),
                         v.integrateScan(a, b) / width),
                  kTol);
    }
}

} // namespace

// --- indexed vs scan, per TemporalOp --------------------------------------

TEST(AggIndexDifferential, RandomSlicesAllOpsAgree)
{
    vt::Variable v = randomVariable(500, 1);
    v.buildIndex();
    ASSERT_TRUE(v.indexConsistent());

    viva::support::Rng rng(2);
    double span = v.lastTime() - v.firstTime();
    for (int i = 0; i < 400; ++i) {
        double a = rng.uniform(v.firstTime() - 0.1 * span,
                               v.lastTime() + 0.1 * span);
        double b = a + rng.uniform(0.0, 0.5 * span);
        expectAllOpsAgree(v, a, b);
    }
}

TEST(AggIndexDifferential, TinySlicesDeepIntoTheTrace)
{
    // The cancellation stress: a slice much narrower than the prefix
    // integral it would naively be computed from.
    vt::Variable v = randomVariable(2000, 3);
    v.buildIndex();
    viva::support::Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        double a = rng.uniform(v.firstTime(), v.lastTime());
        double b = a + rng.uniform(0.0, 1e-6);
        expectAllOpsAgree(v, a, b);
    }
}

TEST(AggIndexDifferential, SliceBoundariesOnChangePoints)
{
    vt::Variable v = randomVariable(64, 5);
    v.buildIndex();
    const auto &pts = v.changePoints();
    for (std::size_t i = 0; i < pts.size(); ++i)
        for (std::size_t j = i; j < pts.size(); j += 7)
            expectAllOpsAgree(v, pts[i].time, pts[j].time);
}

TEST(AggIndexDifferential, EmptyVariable)
{
    vt::Variable v;
    v.buildIndex();
    EXPECT_TRUE(v.indexed());
    expectAllOpsAgree(v, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(v.integrate(0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(v.average(0.0, 10.0), 0.0);
}

TEST(AggIndexDifferential, SinglePointVariable)
{
    vt::Variable v;
    v.set(5.0, 42.0);
    v.buildIndex();
    expectAllOpsAgree(v, 0.0, 4.0);    // entirely before
    expectAllOpsAgree(v, 6.0, 9.0);    // entirely after the point
    expectAllOpsAgree(v, 0.0, 10.0);   // spanning
    EXPECT_DOUBLE_EQ(v.integrate(5.0, 7.0), 84.0);
}

TEST(AggIndexDifferential, DegenerateAndOutOfRangeSlices)
{
    vt::Variable v = randomVariable(100, 6);
    v.buildIndex();
    double lo = v.firstTime(), hi = v.lastTime();

    // Degenerate: a == b.
    expectAllOpsAgree(v, lo + 1.0, lo + 1.0);
    EXPECT_DOUBLE_EQ(v.integrate(lo + 1.0, lo + 1.0), 0.0);
    EXPECT_DOUBLE_EQ(v.average(lo + 1.0, lo + 1.0),
                     v.valueAt(lo + 1.0));

    // Entirely before the first point: the variable is 0 there.
    expectAllOpsAgree(v, lo - 20.0, lo - 10.0);
    EXPECT_DOUBLE_EQ(v.integrate(lo - 20.0, lo - 10.0), 0.0);

    // Entirely after the last point: the last value holds.
    expectAllOpsAgree(v, hi + 10.0, hi + 20.0);

    // Spanning far beyond both ends.
    expectAllOpsAgree(v, lo - 100.0, hi + 100.0);
}

// --- index invalidation ----------------------------------------------------

TEST(AggIndexDifferential, SetInvalidatesTheIndex)
{
    vt::Variable v = randomVariable(50, 7);
    v.buildIndex();
    ASSERT_TRUE(v.indexed());

    v.set(1e6, 3.0);
    EXPECT_FALSE(v.indexed());
    // Queries on a dirty index fall back to the scan -- identical by
    // construction, but assert the contract anyway.
    EXPECT_DOUBLE_EQ(v.integrate(0.0, 2e6), v.integrateScan(0.0, 2e6));

    v.buildIndex();
    EXPECT_TRUE(v.indexed());
    EXPECT_TRUE(v.indexConsistent());
    expectAllOpsAgree(v, 0.0, 2e6);
}

TEST(AggIndexDifferential, AddAndCompactInvalidate)
{
    vt::Variable v;
    v.set(0.0, 5.0);
    v.set(1.0, 5.0);  // redundant: compact() removes it
    v.buildIndex();
    ASSERT_TRUE(v.indexed());

    v.add(2.0, 1.0);
    EXPECT_FALSE(v.indexed());
    v.buildIndex();
    ASSERT_TRUE(v.indexed());

    EXPECT_EQ(v.compact(), 1u);
    EXPECT_FALSE(v.indexed());
    v.buildIndex();
    EXPECT_TRUE(v.indexConsistent());
}

// --- the hierarchy-closure cache ------------------------------------------

namespace
{

/** Two sites of two hosts each, with power set on every host. */
struct ClosureFixture
{
    vt::Trace trace;
    vt::ContainerId s1, s2, h1, h2, h3, h4;
    vt::MetricId power;
    vt::MetricId idle;  ///< registered but carried by no container

    ClosureFixture()
    {
        vt::TraceBuilder b;
        power = b.powerMetric();
        b.beginGroup("s1", vt::ContainerKind::Site);
        s1 = b.currentGroup();
        h1 = b.host("h1");
        h2 = b.host("h2");
        b.endGroup();
        b.beginGroup("s2", vt::ContainerKind::Site);
        s2 = b.currentGroup();
        h3 = b.host("h3");
        h4 = b.host("h4");
        b.endGroup();

        vt::Trace &t = b.trace();
        idle = t.addMetric("idle", "ratio", vt::MetricNature::Gauge);
        t.variable(h1, power).set(0.0, 10.0);
        t.variable(h2, power).set(0.0, 20.0);
        t.variable(h3, power).set(0.0, 30.0);
        t.variable(h4, power).set(0.0, 40.0);
        t.variable(h1, power).set(10.0, 10.0);

        trace = b.take();  // take() builds the acceleration structures
    }
};

} // namespace

TEST(ClosureCache, BuilderTakeBuildsAcceleration)
{
    ClosureFixture f;
    EXPECT_TRUE(f.trace.closureFresh());
    const vt::Variable *v = f.trace.findVariable(f.h1, f.power);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->indexed());
}

TEST(ClosureCache, CachedSubtreeMatchesRecomputation)
{
    ClosureFixture f;
    for (vt::ContainerId id :
         {f.trace.root(), f.s1, f.s2, f.h1, f.h4}) {
        std::vector<vt::ContainerId> fresh = f.trace.subtree(id);
        std::span<const vt::ContainerId> cached =
            f.trace.cachedSubtree(id);
        ASSERT_EQ(cached.size(), fresh.size());
        for (std::size_t i = 0; i < fresh.size(); ++i)
            EXPECT_EQ(cached[i], fresh[i]);
    }
}

TEST(ClosureCache, CarriersMatchFindVariable)
{
    ClosureFixture f;
    for (vt::ContainerId id : {f.trace.root(), f.s1, f.s2, f.h2}) {
        std::vector<const vt::Variable *> fresh;
        for (vt::ContainerId member : f.trace.subtree(id))
            if (const vt::Variable *v =
                    f.trace.findVariable(member, f.power);
                v && !v->empty())
                fresh.push_back(v);
        std::span<const vt::Variable *const> cached =
            f.trace.carriers(id, f.power);
        ASSERT_EQ(cached.size(), fresh.size());
        for (std::size_t i = 0; i < fresh.size(); ++i)
            EXPECT_EQ(cached[i], fresh[i]);
        // A metric nobody carries has an empty list everywhere.
        EXPECT_TRUE(f.trace.carriers(id, f.idle).empty());
    }
}

TEST(ClosureCache, MutationInvalidatesAndFallbackStaysCorrect)
{
    ClosureFixture f;
    va::Aggregator agg(f.trace);
    va::TimeSlice slice{0.0, 10.0};

    ASSERT_TRUE(f.trace.closureFresh());
    double cached_total = agg.value(f.trace.root(), f.power, slice);
    EXPECT_DOUBLE_EQ(cached_total, 100.0);

    std::uint64_t before = f.trace.version();
    f.trace.variable(f.h1, f.power).set(10.0, 50.0);
    EXPECT_GT(f.trace.version(), before);
    EXPECT_FALSE(f.trace.closureFresh());

    // The stale-cache path answers from the legacy recomputation --
    // same value for an unchanged slice.
    EXPECT_DOUBLE_EQ(agg.value(f.trace.root(), f.power, slice),
                     cached_total);

    // Rebuilding re-arms the cache and the answers still agree.
    f.trace.ensureQueryAcceleration();
    EXPECT_TRUE(f.trace.closureFresh());
    EXPECT_DOUBLE_EQ(agg.value(f.trace.root(), f.power, slice),
                     cached_total);
}

TEST(ClosureCache, EveryMutatorBumpsTheVersion)
{
    ClosureFixture f;
    std::uint64_t v = f.trace.version();

    vt::ContainerId extra = f.trace.addContainer(
        "h5", vt::ContainerKind::Host, f.s2);
    EXPECT_GT(f.trace.version(), v);
    v = f.trace.version();

    f.trace.addRelation(f.h1, extra);
    EXPECT_GT(f.trace.version(), v);
    v = f.trace.version();

    f.trace.addMetric("load", "ratio", vt::MetricNature::Gauge);
    EXPECT_GT(f.trace.version(), v);
    v = f.trace.version();

    f.trace.variable(extra, f.power);
    EXPECT_GT(f.trace.version(), v);
}

TEST(ClosureCache, CachedAndFallbackAggregationsAgreeOnAllOps)
{
    ClosureFixture f;
    va::Aggregator agg(f.trace);
    va::TimeSlice slice{2.0, 8.0};

    const va::SpatialOp sops[] = {va::SpatialOp::Sum,
                                  va::SpatialOp::Average,
                                  va::SpatialOp::Max, va::SpatialOp::Min};
    const va::TemporalOp tops[] = {
        va::TemporalOp::Average, va::TemporalOp::Max, va::TemporalOp::Min,
        va::TemporalOp::Integral};

    // Compute once against the fresh closure, then dirty the trace (a
    // no-op mutation: variable() on an existing pair) and recompute via
    // the fallback. Bitwise equality is the contract: the cached fold
    // runs the same chunk decomposition over the same variable list.
    for (va::SpatialOp s : sops) {
        for (va::TemporalOp t : tops) {
            f.trace.ensureQueryAcceleration();
            ASSERT_TRUE(f.trace.closureFresh());
            double cached =
                agg.value(f.s1, f.power, slice, s, t);
            f.trace.variable(f.h2, f.power);  // bump: cache goes stale
            ASSERT_FALSE(f.trace.closureFresh());
            double fallback =
                agg.value(f.s1, f.power, slice, s, t);
            EXPECT_EQ(cached, fallback)
                << "spatial " << int(s) << " temporal " << int(t);
        }
    }
}

TEST(ClosureCache, DistributionAgreesCachedAndStale)
{
    ClosureFixture f;
    va::Aggregator agg(f.trace);
    va::TimeSlice slice{0.0, 10.0};

    f.trace.ensureQueryAcceleration();
    viva::support::Samples cached =
        agg.distribution(f.trace.root(), f.power, slice);
    f.trace.variable(f.h3, f.power);  // stale
    viva::support::Samples stale =
        agg.distribution(f.trace.root(), f.power, slice);
    ASSERT_EQ(cached.count(), stale.count());
    ASSERT_EQ(cached.count(), 4u);
    for (std::size_t i = 0; i < cached.count(); ++i)
        EXPECT_EQ(cached.data()[i], stale.data()[i]);
}
