/**
 * @file
 * Tests for the crash-safe checkpoint layer: the `viva-ckpt-1` binary
 * format (serialize/parse round trip, the strictly bounded reader),
 * the write-temp -> flush -> atomic-rename writer protocol under fault
 * injection, Session::checkpoint / Session::restore digest equality,
 * the retry policy around transient checkpoint I/O, and the
 * interpreter's checkpoint / restore / auto-checkpoint commands.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/checkpoint.hh"
#include "app/commands.hh"
#include "app/session.hh"
#include "platform/builders.hh"
#include "platform/platform_trace.hh"
#include "support/clock.hh"
#include "support/error.hh"
#include "support/fault.hh"
#include "support/logging.hh"
#include "trace/builder.hh"
#include "trace/io.hh"

namespace vap = viva::app;
namespace vs = viva::support;
namespace vt = viva::trace;

namespace
{

/** RAII: leave no armed point or warn counter behind for other tests. */
struct FaultGuard
{
    FaultGuard() { vs::FaultInjector::global().disarmAll(); }
    ~FaultGuard()
    {
        vs::FaultInjector::global().disarmAll();
        vs::resetWarnLimits();
    }
};

std::filesystem::path
tempDir()
{
    auto dir =
        std::filesystem::temp_directory_path() / "viva_checkpoint_test";
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * A session with every checkpointed degree of freedom exercised:
 * a non-trivial slice, a coarsened cut, touched force and size
 * sliders, a moved and a pinned node, explicit threads and governor
 * budgets, and a relaxed layout.
 */
vap::Session
makeBusySession()
{
    vap::Session s(vt::makeFigure1Trace());
    s.setSliceOf(viva::agg::SliceIndex{1}, 3);
    s.forceParams().charge *= 1.5;
    s.forceParams().spring *= 0.8;
    auto power = s.trace().findMetric("power");
    s.scaling().setSlider(power, 2.5);
    s.setThreads(2);
    s.stabilizeLayout(40).value();
    EXPECT_TRUE(s.moveNode("HostA", 321.0, 123.0));
    EXPECT_TRUE(s.pinNode("HostB", true));
    s.setMemoryBudget(1ull << 30);  // generous: no degradation
    s.setOperationDeadline(0);
    return s;
}

/** A small but fully populated image for format-level tests. */
vap::CheckpointImage
makeImage()
{
    vap::Session s = makeBusySession();
    auto path = (tempDir() / "image_source.ckpt").string();
    EXPECT_TRUE(s.checkpoint(path).ok());
    auto image = vap::readCheckpointFile(path);
    EXPECT_TRUE(image.ok()) << image.error().toString();
    return *image;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

} // namespace

// --- format round trip ---------------------------------------------------------

TEST(CheckpointFormat, SerializeParseRoundTripPreservesEveryField)
{
    vap::CheckpointImage image = makeImage();
    ASSERT_FALSE(image.traceText.empty());
    ASSERT_FALSE(image.nodes.empty());
    ASSERT_FALSE(image.sliders.empty());

    std::string bytes = vap::serializeCheckpoint(image);
    auto parsed = vap::parseCheckpoint(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.error().toString();

    EXPECT_EQ(parsed->traceText, image.traceText);
    EXPECT_EQ(parsed->cutFlags, image.cutFlags);
    EXPECT_EQ(parsed->sliceBegin, image.sliceBegin);
    EXPECT_EQ(parsed->sliceEnd, image.sliceEnd);
    EXPECT_EQ(parsed->force.charge, image.force.charge);
    EXPECT_EQ(parsed->force.spring, image.force.spring);
    EXPECT_EQ(parsed->threads, image.threads);
    EXPECT_EQ(parsed->maxPixel, image.maxPixel);
    ASSERT_EQ(parsed->sliders.size(), image.sliders.size());
    for (std::size_t i = 0; i < image.sliders.size(); ++i) {
        EXPECT_EQ(parsed->sliders[i].first, image.sliders[i].first);
        EXPECT_EQ(parsed->sliders[i].second, image.sliders[i].second);
    }
    EXPECT_EQ(parsed->memBudgetBytes, image.memBudgetBytes);
    EXPECT_EQ(parsed->opDeadlineNanos, image.opDeadlineNanos);
    ASSERT_EQ(parsed->nodes.size(), image.nodes.size());
    for (std::size_t i = 0; i < image.nodes.size(); ++i) {
        EXPECT_EQ(parsed->nodes[i].key, image.nodes[i].key);
        EXPECT_EQ(parsed->nodes[i].px, image.nodes[i].px);
        EXPECT_EQ(parsed->nodes[i].vy, image.nodes[i].vy);
        EXPECT_EQ(parsed->nodes[i].pinned, image.nodes[i].pinned);
    }
}

TEST(CheckpointFormat, SerializationIsDeterministic)
{
    vap::CheckpointImage image = makeImage();
    EXPECT_EQ(vap::serializeCheckpoint(image),
              vap::serializeCheckpoint(image));
}

// --- the bounded reader --------------------------------------------------------

TEST(CheckpointFormat, EveryTruncationIsARejectedParseNotACrash)
{
    std::string bytes = vap::serializeCheckpoint(makeImage());
    ASSERT_GT(bytes.size(), 64u);
    // Every prefix of the first chunk, then a stride through the rest:
    // header truncations, mid-section truncations, missing-footer
    // truncations are all covered.
    for (std::size_t cut = 0; cut < bytes.size();
         cut += (cut < 64 ? 1 : 7)) {
        auto parsed = vap::parseCheckpoint(bytes.substr(0, cut));
        ASSERT_FALSE(parsed.ok()) << "cut at " << cut;
        EXPECT_FALSE(parsed.error().context().empty())
            << "cut at " << cut;
    }
}

TEST(CheckpointFormat, ChecksumMismatchIsRejected)
{
    std::string bytes = vap::serializeCheckpoint(makeImage());
    // Flip one payload byte: the FNV footer no longer matches.
    bytes[bytes.size() / 2] ^= 0x01;
    auto parsed = vap::parseCheckpoint(bytes);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), vs::Errc::Parse);
    EXPECT_NE(parsed.error().toString().find("checksum"),
              std::string::npos);
}

TEST(CheckpointFormat, VersionSkewIsRejected)
{
    std::string bytes = vap::serializeCheckpoint(makeImage());
    ASSERT_EQ(bytes.compare(0, vap::kCheckpointMagic.size(),
                            vap::kCheckpointMagic),
              0);
    bytes[10] = '9';  // "viva-ckpt-9\n"
    auto parsed = vap::parseCheckpoint(bytes);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), vs::Errc::Parse);
}

TEST(CheckpointFormat, TrailingBytesAreRejected)
{
    std::string bytes = vap::serializeCheckpoint(makeImage());
    auto parsed = vap::parseCheckpoint(bytes + "x");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), vs::Errc::Parse);
}

TEST(CheckpointFormat, HugeLengthFieldsNeverAllocate)
{
    std::string bytes = vap::serializeCheckpoint(makeImage());
    // Overwrite the payload-length field with an absurd value: the
    // reader must reject it against kMaxCheckpointPayload before
    // sizing any buffer.
    for (std::size_t i = 12; i < 20; ++i)
        bytes[i] = char(0xFF);
    auto parsed = vap::parseCheckpoint(bytes);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), vs::Errc::Budget);
}

TEST(CheckpointFormat, BudgetCeilingsApplyBeforeAllocation)
{
    std::string bytes = vap::serializeCheckpoint(makeImage());
    vt::ParseBudget tiny;
    tiny.maxContainers = 1;  // fewer than the cut flags in the image
    auto parsed = vap::parseCheckpoint(bytes, tiny);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), vs::Errc::Budget);
}

// --- the crash-safe writer -----------------------------------------------------

TEST(CheckpointWriter, FaultedWriteLeavesTheOldCheckpointIntact)
{
    FaultGuard guard;
    auto path = (tempDir() / "atomic.ckpt").string();

    vap::Session first = makeBusySession();
    ASSERT_TRUE(first.checkpoint(path).ok());
    const std::string before = readFile(path);
    const std::uint64_t first_digest = first.stateDigest();

    // A different state, whose write dies mid-stream on every attempt.
    vap::Session second = makeBusySession();
    second.setSliceOf(viva::agg::SliceIndex{0}, 3);
    second.retryPolicy().maxAttempts = 2;
    vs::FakeClock fake;
    vs::ClockOverride clock_guard(fake);
    vs::FaultInjector::global().arm("ckpt.write.stream");
    auto written = second.checkpoint(path);
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().code(), vs::Errc::Io);

    // Old bytes untouched, no temp litter, and the old file still
    // restores to the first session's exact state.
    EXPECT_EQ(readFile(path), before);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    vap::Session restored(vt::makeFigure1Trace());
    ASSERT_TRUE(restored.restore(path).ok());
    EXPECT_EQ(restored.stateDigest(), first_digest);
}

TEST(CheckpointWriter, TransientWriteFaultIsRetriedToSuccess)
{
    FaultGuard guard;
    auto path = (tempDir() / "retried.ckpt").string();

    vap::Session s = makeBusySession();
    s.retryPolicy().maxAttempts = 3;
    vs::FakeClock fake;
    vs::ClockOverride clock_guard(fake);

    // Exactly one fault: the first attempt dies, the retry succeeds.
    vs::FaultSpec spec;
    spec.maxFires = 1;
    vs::FaultInjector::global().arm("ckpt.write.stream", spec);

    ASSERT_TRUE(s.checkpoint(path).ok());
    EXPECT_GT(fake.nowNanos(), 0u) << "the retry backoff never slept";

    vap::Session restored(vt::makeFigure1Trace());
    ASSERT_TRUE(restored.restore(path).ok());
    EXPECT_EQ(restored.stateDigest(), s.stateDigest());
}

TEST(CheckpointWriter, ChunkedWritesProduceIdenticalBytes)
{
    auto whole = (tempDir() / "whole.ckpt").string();
    auto chunked = (tempDir() / "chunked.ckpt").string();
    vap::CheckpointImage image = makeImage();
    ASSERT_TRUE(vap::writeCheckpointFile(image, whole).ok());
    ASSERT_TRUE(vap::writeCheckpointFile(image, chunked, 64).ok());
    EXPECT_EQ(readFile(whole), readFile(chunked));
}

// --- session restore -----------------------------------------------------------

TEST(CheckpointRestore, RestoreIsBitwiseEquivalentToTheCheckpoint)
{
    auto path = (tempDir() / "roundtrip.ckpt").string();
    vap::Session original = makeBusySession();
    const std::uint64_t digest = original.stateDigest();
    ASSERT_TRUE(original.checkpoint(path).ok());

    vap::Session restored(vt::makeFigure1Trace());
    EXPECT_NE(restored.stateDigest(), digest);
    auto ok = restored.restore(path);
    ASSERT_TRUE(ok.ok()) << ok.error().toString();
    EXPECT_EQ(restored.stateDigest(), digest);

    // The restored session is fully alive: governance settings came
    // back, audits pass and it renders.
    EXPECT_EQ(restored.threads(), original.threads());
    EXPECT_EQ(restored.memoryBudget(), original.memoryBudget());
    EXPECT_TRUE(restored.auditInvariants().empty());
    auto svg =
        restored.renderSvg((tempDir() / "restored.svg").string());
    EXPECT_TRUE(svg.ok()) << svg.error().toString();
}

TEST(CheckpointRestore, RoundTripsAcrossAggregationStates)
{
    // The deeper two-cluster platform: checkpoint/restore at several
    // points of the aggregation ladder, digest-identical each time.
    viva::platform::Platform p =
        viva::platform::makeTwoClusterPlatform();
    vt::Trace t;
    viva::platform::mirrorPlatform(p, t);
    vap::Session s(std::move(t));
    auto path = (tempDir() / "ladder.ckpt").string();

    for (std::uint16_t depth = 3; depth > 0; --depth) {
        s.aggregateToDepth(std::uint16_t(depth - 1));
        s.stabilizeLayout(20).value();
        const std::uint64_t digest = s.stateDigest();
        ASSERT_TRUE(s.checkpoint(path).ok()) << "depth " << depth;

        vap::Session restored(vt::makeFigure1Trace());
        ASSERT_TRUE(restored.restore(path).ok()) << "depth " << depth;
        EXPECT_EQ(restored.stateDigest(), digest) << "depth " << depth;
        EXPECT_EQ(restored.cut().visibleCount(), s.cut().visibleCount());
    }
}

TEST(CheckpointRestore, FailedRestoreLeavesTheSessionUnchanged)
{
    FaultGuard guard;
    auto good = (tempDir() / "good.ckpt").string();
    auto bad = (tempDir() / "bad.ckpt").string();
    vap::Session source = makeBusySession();
    ASSERT_TRUE(source.checkpoint(good).ok());
    std::string bytes = readFile(good);
    bytes[bytes.size() / 2] ^= 0x10;
    writeFile(bad, bytes);

    vap::Session s = makeBusySession();
    const std::uint64_t digest = s.stateDigest();

    auto corrupt = s.restore(bad);
    ASSERT_FALSE(corrupt.ok());
    EXPECT_FALSE(corrupt.error().context().empty());
    EXPECT_EQ(s.stateDigest(), digest);

    auto missing = s.restore((tempDir() / "nope.ckpt").string());
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(s.stateDigest(), digest);

    vs::FaultInjector::global().arm("ckpt.read.stream");
    s.retryPolicy().maxAttempts = 1;
    auto faulted = s.restore(good);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.error().code(), vs::Errc::Io);
    EXPECT_EQ(s.stateDigest(), digest);
    vs::FaultInjector::global().disarmAll();

    // After the gauntlet the session still restores the good file.
    ASSERT_TRUE(s.restore(good).ok());
    EXPECT_EQ(s.stateDigest(), source.stateDigest());
}

// --- interpreter commands ------------------------------------------------------

TEST(CheckpointCommands, CheckpointAndRestoreRoundTripThroughTheCli)
{
    auto path = (tempDir() / "cli.ckpt").string();
    vap::Session s = makeBusySession();
    const std::uint64_t digest = s.stateDigest();
    vap::CommandInterpreter cli(s);

    std::ostringstream out;
    ASSERT_TRUE(cli.execute("checkpoint " + path, out));
    EXPECT_NE(out.str().find("checkpoint"), std::string::npos);

    ASSERT_TRUE(cli.execute("slice-of 0 3", out));
    EXPECT_NE(s.stateDigest(), digest);
    ASSERT_TRUE(cli.execute("restore " + path, out));
    EXPECT_EQ(s.stateDigest(), digest);

    std::ostringstream err;
    EXPECT_FALSE(cli.execute("restore /no/such/file.ckpt", err));
    EXPECT_EQ(s.stateDigest(), digest);
}

TEST(CheckpointCommands, AutoCheckpointWritesEveryNthCommand)
{
    auto path = (tempDir() / "auto.ckpt").string();
    std::filesystem::remove(path);
    vap::Session s(vt::makeFigure1Trace());
    vap::CommandInterpreter cli(s);
    std::ostringstream out;

    ASSERT_TRUE(cli.execute("set autockpt 2 " + path, out));
    ASSERT_TRUE(cli.execute("slice-of 0 3", out));
    EXPECT_FALSE(std::filesystem::exists(path)) << "one command in";
    ASSERT_TRUE(cli.execute("slice-of 1 3", out));
    ASSERT_TRUE(std::filesystem::exists(path)) << "two commands in";

    // The auto-checkpoint captured the state after the second command.
    const std::uint64_t digest = s.stateDigest();
    ASSERT_TRUE(cli.execute("slice-of 2 3", out));
    vap::Session restored(vt::makeFigure1Trace());
    ASSERT_TRUE(restored.restore(path).ok());
    EXPECT_EQ(restored.stateDigest(), digest);

    // Comments are not counted; 0 disables.
    ASSERT_TRUE(cli.execute("set autockpt 0", out));
    std::filesystem::remove(path);
    ASSERT_TRUE(cli.execute("slice-of 0 3", out));
    ASSERT_TRUE(cli.execute("slice-of 1 3", out));
    EXPECT_FALSE(std::filesystem::exists(path));
}
